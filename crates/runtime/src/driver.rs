//! The host-side driver.
//!
//! NetPU-M's selling point is that the "runtime environment" collapses
//! to data streaming: the host compiles a model + input into a loadable
//! once, pushes it through DMA, and reads one result word back. This
//! driver wraps that flow and attaches the DMA and power models so
//! callers get Table VI-style *measured* numbers.
//!
//! All inference flows funnel through one entry point,
//! [`Driver::run`], which takes an [`InferRequest`] (single frame,
//! memoized batch, single-transfer burst, or a pre-compiled loadable)
//! and returns an [`InferResponse`]. The historical `infer` /
//! `infer_batch` / `infer_burst` / `run_loadable` methods remain as
//! thin wrappers over it. `InferRequest` is also the unit of work the
//! `netpu-serve` multi-board scheduler enqueues.

use crate::dma::DmaModel;
use crate::power::PowerParams;
use netpu_check::{AdmissionVerdict, RejectReason};
use netpu_compiler::{compile, Loadable, StreamError};
use netpu_core::netpu::{
    run_inference_fast, run_inference_hooked, run_inference_observed, InferenceRun, NetPuError,
};
use netpu_core::resources::netpu_utilization;
use netpu_core::{BatchEngine, HwConfig, SlabBreakdown};
use netpu_nn::QuantMlp;
use netpu_sim::{DatapathProbe, TraceEvent, Tracer};
use netpu_trace::TraceSink;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Sim-tracer window forwarded per run when a [`TraceSink`] is
/// attached but the request did not name its own capacity: enough to
/// hold a full small-model run without letting one traced request
/// balloon a long recording session.
const SINK_TRACE_EVENTS: usize = 1024;

/// One measured inference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// Predicted class.
    pub class: usize,
    /// Simulated accelerator latency (Table V style), µs.
    pub sim_latency_us: f64,
    /// Measured end-to-end latency incl. DMA/PS overhead (Table VI
    /// style), µs.
    pub measured_latency_us: f64,
    /// Modeled wall power, W.
    pub power_w: f64,
    /// Energy per inference, µJ.
    pub energy_uj: f64,
    /// Stream length in 64-bit words.
    pub stream_words: usize,
    /// Accelerator cycles.
    pub cycles: u64,
    /// SoftMax class probabilities (instances configured with
    /// `softmax_output` only).
    pub probabilities: Option<Vec<f64>>,
}

/// Driver errors.
///
/// Marked `#[non_exhaustive]`: the serving layer grows variants
/// (admission, deadlines) without breaking downstream matches. Every
/// wrapped error is reachable through [`std::error::Error::source`],
/// so callers can walk `DriverError` → [`NetPuError`] →
/// [`StreamError`]/`SimError` without matching on shapes.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum DriverError {
    /// Compilation of the model/input failed.
    Compile(StreamError),
    /// The accelerator rejected or failed on the stream.
    Accelerator(NetPuError),
    /// A run reported a non-positive latency; throughput analysis over
    /// it would divide by zero (degenerate zero-cycle or empty-model
    /// loadables).
    Degenerate {
        /// The offending latency, µs.
        latency_us: f64,
    },
    /// The serving layer dropped the request without completing it
    /// (queue closed, server shut down).
    Queue {
        /// What happened to the request.
        reason: String,
    },
    /// The per-request deadline elapsed before the result was ready.
    Timeout {
        /// The configured deadline, µs.
        deadline_us: f64,
        /// When the result would actually have been ready, µs.
        elapsed_us: f64,
    },
    /// A response carried no runs where at least one was expected.
    EmptyResponse,
    /// An admission gate refused the request. The unified
    /// [`RejectReason`] covers the driver's own static pre-flight
    /// (`RejectReason::Invalid`, carrying the verifier report with NPC
    /// rule IDs and byte offsets — rejected streams never cost
    /// simulation or DMA time) as well as serving-layer refusals
    /// (backpressure, throttling, shutdown, crash recovery), so every
    /// layer reports rejections in one machine-readable shape.
    Rejected(RejectReason),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Compile(e) => write!(f, "compile: {e}"),
            DriverError::Accelerator(e) => write!(f, "accelerator: {e}"),
            DriverError::Degenerate { latency_us } => {
                write!(f, "degenerate run: latency {latency_us} us")
            }
            DriverError::Queue { reason } => write!(f, "queue: {reason}"),
            DriverError::EmptyResponse => f.write_str("response carried no runs"),
            DriverError::Rejected(reason) => {
                write!(f, "admission rejected the request: {reason}")
            }
            DriverError::Timeout {
                deadline_us,
                elapsed_us,
            } => write!(
                f,
                "deadline {deadline_us} us exceeded: ready at {elapsed_us:.1} us"
            ),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Compile(e) => Some(e),
            DriverError::Accelerator(e) => Some(e),
            DriverError::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

/// How an [`InferRequest`] refers to its model: borrowed for zero-copy
/// single-threaded use, or shared behind an [`Arc`] so the same model
/// can back many queued requests across the serving layer's worker
/// threads without cloning weights.
#[derive(Clone, Debug)]
pub enum ModelSource<'m> {
    /// Borrowed from the caller.
    Borrowed(&'m QuantMlp),
    /// Shared across threads.
    Shared(Arc<QuantMlp>),
}

impl std::ops::Deref for ModelSource<'_> {
    type Target = QuantMlp;

    fn deref(&self) -> &QuantMlp {
        match self {
            ModelSource::Borrowed(m) => m,
            ModelSource::Shared(m) => m,
        }
    }
}

impl<'m> From<&'m QuantMlp> for ModelSource<'m> {
    fn from(m: &'m QuantMlp) -> ModelSource<'m> {
        ModelSource::Borrowed(m)
    }
}

impl From<Arc<QuantMlp>> for ModelSource<'static> {
    fn from(m: Arc<QuantMlp>) -> ModelSource<'static> {
        ModelSource::Shared(m)
    }
}

impl From<QuantMlp> for ModelSource<'static> {
    fn from(m: QuantMlp) -> ModelSource<'static> {
        ModelSource::Shared(Arc::new(m))
    }
}

/// Per-request options. All default to "off"; the serving layer fills
/// unset fields from its own configuration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RequestOptions {
    /// Deadline on the request's end-to-end (virtual) latency, µs.
    pub deadline_us: Option<f64>,
    /// Retry budget on transient stream faults (serving layer only).
    pub retries: Option<u32>,
    /// Attach a bounded event trace of this many events to the run.
    /// Superseded by [`DriverBuilder::trace_sink`] (see
    /// [`InferRequest::with_trace`] for the migration note); still
    /// honored for per-request in-response traces.
    pub trace_capacity: Option<usize>,
}

/// What an [`InferRequest`] asks the accelerator to do.
#[derive(Clone, Debug)]
pub enum InferPayload<'m> {
    /// One frame: compile model + input, stream, read one result.
    Single {
        /// The model to run.
        model: ModelSource<'m>,
        /// One input frame.
        pixels: Vec<u8>,
    },
    /// Many frames of one model, one DMA transfer per frame. The cycle
    /// model runs once (latency is input-independent for a fixed
    /// model) and the numeric datapath fans out across worker threads.
    Batch {
        /// The model to run.
        model: ModelSource<'m>,
        /// The input frames.
        inputs: Vec<Vec<u8>>,
    },
    /// Many frames pre-packaged into one stream behind a single DMA
    /// setup (§III.B.3 bursting).
    Burst {
        /// The model to run.
        model: ModelSource<'m>,
        /// The input frames.
        inputs: Vec<Vec<u8>>,
    },
    /// A pre-compiled loadable, streamed as-is.
    Loadable(Loadable),
}

/// One unit of inference work: a payload plus options. This is the
/// request type [`Driver::run`] executes and the `netpu-serve` server
/// enqueues.
#[derive(Clone, Debug)]
pub struct InferRequest<'m> {
    /// What to run.
    pub payload: InferPayload<'m>,
    /// How to run it.
    pub options: RequestOptions,
}

impl<'m> InferRequest<'m> {
    /// A single-frame request.
    pub fn single(model: impl Into<ModelSource<'m>>, pixels: Vec<u8>) -> InferRequest<'m> {
        InferRequest {
            payload: InferPayload::Single {
                model: model.into(),
                pixels,
            },
            options: RequestOptions::default(),
        }
    }

    /// A memoized multi-frame batch request.
    pub fn batch(model: impl Into<ModelSource<'m>>, inputs: Vec<Vec<u8>>) -> InferRequest<'m> {
        InferRequest {
            payload: InferPayload::Batch {
                model: model.into(),
                inputs,
            },
            options: RequestOptions::default(),
        }
    }

    /// A single-transfer burst request.
    pub fn burst(model: impl Into<ModelSource<'m>>, inputs: Vec<Vec<u8>>) -> InferRequest<'m> {
        InferRequest {
            payload: InferPayload::Burst {
                model: model.into(),
                inputs,
            },
            options: RequestOptions::default(),
        }
    }

    /// A request over a pre-compiled loadable.
    pub fn loadable(loadable: Loadable) -> InferRequest<'static> {
        InferRequest {
            payload: InferPayload::Loadable(loadable),
            options: RequestOptions::default(),
        }
    }

    /// Sets a deadline on the request's end-to-end latency.
    pub fn with_deadline_us(mut self, deadline_us: f64) -> InferRequest<'m> {
        self.options.deadline_us = Some(deadline_us);
        self
    }

    /// Sets the retry budget for transient stream faults.
    pub fn with_retries(mut self, retries: u32) -> InferRequest<'m> {
        self.options.retries = Some(retries);
        self
    }

    /// Attaches a bounded per-run event trace to the response.
    ///
    /// **Migration:** attach a [`TraceSink`] at driver construction
    /// instead — `Driver::builder().trace_sink(sink)` — which observes
    /// *every* run (simulator events, and datapath values under
    /// [`DriverBuilder::probe_datapath`]) through the same surface the
    /// serving layers record scheduling events to, and whose
    /// recordings serialize to the replayable binary trace format.
    /// The per-request hook survives for callers that want one run's
    /// events inline in its [`InferResponse`], but new observability
    /// code should not grow around it.
    #[deprecated(note = "attach a TraceSink via Driver::builder().trace_sink(..) instead")]
    pub fn with_trace(mut self, capacity: usize) -> InferRequest<'m> {
        self.options.trace_capacity = Some(capacity);
        self
    }
}

/// The result of one [`InferRequest`].
#[derive(Clone, Debug, PartialEq)]
pub struct InferResponse {
    /// One measured run per frame, in request order.
    pub runs: Vec<MeasuredRun>,
    /// Sustained rate for burst requests (one DMA setup amortized over
    /// the whole burst); `None` for other payloads.
    pub burst_fps: Option<f64>,
    /// Number of separate DMA transfers the payload needed (1 for
    /// single/loadable/burst, one per frame for batch). Together with
    /// the per-run `stream_words` this determines how long the request
    /// occupies a *shared* host DMA engine.
    pub dma_transfers: usize,
    /// How a batch payload decomposed across the bitsliced and
    /// per-frame value kernels ([`SlabBreakdown`]); `None` for
    /// non-batch payloads. The serving layer's slab-occupancy metrics
    /// consume this instead of re-deriving it from the frame count, so
    /// the per-frame fallback path (tail frames *and* fallback-only
    /// models) is accounted consistently.
    pub batch_slabs: Option<SlabBreakdown>,
    /// Datapath events when the request asked for a trace.
    pub trace: Option<Vec<TraceEvent>>,
}

impl InferResponse {
    /// Predicted classes, one per frame.
    pub fn classes(&self) -> Vec<usize> {
        self.runs.iter().map(|r| r.class).collect()
    }

    /// Total measured latency over all frames — the time one board is
    /// occupied serving the request.
    pub fn total_latency_us(&self) -> f64 {
        self.runs.iter().map(|r| r.measured_latency_us).sum()
    }

    /// Total 64-bit words streamed over all frames.
    pub fn total_stream_words(&self) -> usize {
        self.runs.iter().map(|r| r.stream_words).sum()
    }

    /// The first (or only) run.
    pub fn first(&self) -> Option<&MeasuredRun> {
        self.runs.first()
    }
}

/// Builds a [`Driver`] from parts; unset parts default to the paper's
/// measurement setup (Table V instance, Zynq UltraScale+ PS DMA,
/// Ultra96-V2 power coefficients).
///
/// ```
/// use netpu_runtime::{DmaModel, Driver};
/// let driver = Driver::builder().dma(DmaModel::ideal()).build();
/// assert_eq!(driver.dma, DmaModel::ideal());
/// // Unset parts keep the paper defaults.
/// assert_eq!(driver.hw.clock_mhz, 100.0);
/// ```
#[derive(Clone, Debug)]
pub struct DriverBuilder {
    hw: HwConfig,
    dma: DmaModel,
    power: PowerParams,
    strict_range: bool,
    strict_equiv: bool,
    trace_sink: Option<Arc<dyn TraceSink>>,
    probe_datapath: Option<bool>,
}

impl DriverBuilder {
    /// Sets the accelerator instance configuration.
    pub fn hw(mut self, hw: HwConfig) -> DriverBuilder {
        self.hw = hw;
        self
    }

    /// Sets the DMA channel model.
    pub fn dma(mut self, dma: DmaModel) -> DriverBuilder {
        self.dma = dma;
        self
    }

    /// Sets the board power coefficients.
    pub fn power(mut self, power: PowerParams) -> DriverBuilder {
        self.power = power;
        self
    }

    /// Sets whether admission also rejects on error-class *range*
    /// findings (NPC014/NPC018/NPC020) from the pre-flight abstract
    /// interpreter, on top of the always-enforced structural errors.
    /// Defaults to `true`; lenient drivers (`false`) run provably
    /// overflow-prone loadables anyway.
    pub fn strict_range(mut self, strict: bool) -> DriverBuilder {
        self.strict_range = strict;
        self
    }

    /// Enables the opt-in **third admission tier**: requests that carry
    /// their source model (`Single`/`Batch` payloads) are additionally
    /// run through the `netpu-check::symex` translation validator, and
    /// error-class equivalence findings (NPC021/NPC022/NPC024) reject
    /// admission. Pre-compiled `Loadable` payloads carry no source
    /// claim, and `Burst` streams are compiled from the source in the
    /// same call, so both keep the two-tier decision. Defaults to
    /// `false`: certification re-validates the compile the driver
    /// itself just performed, which honest compiles always pass, so it
    /// is a (costly) defense against compiler bugs and tampered
    /// streams rather than everyday hygiene.
    pub fn strict_equiv(mut self, strict: bool) -> DriverBuilder {
        self.strict_equiv = strict;
        self
    }

    /// Attaches a [`TraceSink`]: every run forwards its simulator
    /// tracer events (and, with [`probe_datapath`] set, its datapath
    /// probe samples) to the sink as `Sim` / `Probe` trace events.
    /// This supersedes the per-request bounded-trace hook
    /// ([`InferRequest::with_trace`]): a sink observes every run
    /// through one uniform surface shared with the serving layers,
    /// and its recordings serialize to the replayable binary format.
    ///
    /// [`probe_datapath`]: DriverBuilder::probe_datapath
    pub fn trace_sink(mut self, sink: Arc<dyn TraceSink>) -> DriverBuilder {
        self.trace_sink = Some(sink);
        self
    }

    /// Controls forwarding of intermediate datapath values
    /// (accumulators, post-BN words, levels, scores) to the attached
    /// [`TraceSink`]. **Defaults to on whenever a sink is attached**,
    /// so recorded runs carry the probe samples that cross-check
    /// absint intervals and symex witnesses on replay; pass `false` to
    /// keep a sink recording scheduling/sim events only. No effect
    /// without a sink.
    pub fn probe_datapath(mut self, probe: bool) -> DriverBuilder {
        self.probe_datapath = Some(probe);
        self
    }

    /// Assembles the driver.
    pub fn build(self) -> Driver {
        Driver {
            hw: self.hw,
            dma: self.dma,
            power: self.power,
            strict_range: self.strict_range,
            strict_equiv: self.strict_equiv,
            probe_datapath: self.probe_datapath.unwrap_or(self.trace_sink.is_some()),
            trace_sink: self.trace_sink,
        }
    }
}

/// Host driver bundling the accelerator, DMA, and power models.
///
/// ```
/// use netpu_runtime::Driver;
/// use netpu_nn::{export::BnMode, zoo::ZooModel};
/// let driver = Driver::builder().build();
/// let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
/// let run = driver.infer(&model, &vec![0u8; 784]).unwrap();
/// // Measured latency = simulated latency + the ~5.9 µs DMA/PS setup.
/// assert!(run.measured_latency_us > run.sim_latency_us);
/// assert!((6.0..8.0).contains(&run.power_w));
/// ```
#[derive(Clone, Debug)]
pub struct Driver {
    /// Accelerator instance configuration.
    pub hw: HwConfig,
    /// DMA channel model.
    pub dma: DmaModel,
    /// Power coefficients of the hosting board.
    pub power: PowerParams,
    /// Reject on error-class range-analysis findings too (default
    /// `true`); structural errors always reject.
    pub strict_range: bool,
    /// Reject on error-class symbolic-equivalence findings
    /// (NPC021/NPC022/NPC024) for payloads that carry a source model
    /// (default `false`; the opt-in third admission tier).
    pub strict_equiv: bool,
    /// Trace sink every run reports its simulator events to; `None`
    /// (the default) records nothing.
    pub trace_sink: Option<Arc<dyn TraceSink>>,
    /// Forward datapath probe samples to the sink as well (defaults to
    /// `true` exactly when a sink is attached).
    pub probe_datapath: bool,
}

impl Default for Driver {
    fn default() -> Driver {
        Driver::builder().build()
    }
}

impl Driver {
    /// Starts a [`DriverBuilder`] preset to the paper's measurement
    /// setup: the Table V instance on an Ultra96-V2 behind the Zynq
    /// UltraScale+ PS DMA.
    pub fn builder() -> DriverBuilder {
        DriverBuilder {
            hw: HwConfig::paper_instance(),
            dma: DmaModel::zynq_uls(),
            power: PowerParams::ultra96(),
            strict_range: true,
            strict_equiv: false,
            trace_sink: None,
            probe_datapath: None,
        }
    }

    /// The paper's measurement setup.
    #[deprecated(note = "use `Driver::builder().build()` (optionally overriding hw/dma/power)")]
    pub fn paper_setup() -> Driver {
        Driver::builder().build()
    }

    /// Runs one inference request — the single entry point all the
    /// convenience wrappers and the `netpu-serve` scheduler funnel
    /// through.
    pub fn run(&self, req: InferRequest<'_>) -> Result<InferResponse, DriverError> {
        let trace = req.options.trace_capacity;
        match req.payload {
            InferPayload::Single { model, pixels } => {
                let loadable = compile(&model, &pixels).map_err(DriverError::Compile)?;
                let (run, trace) = self.run_core_against(&loadable, trace, Some(&model))?;
                Ok(InferResponse {
                    runs: vec![run],
                    burst_fps: None,
                    dma_transfers: 1,
                    batch_slabs: None,
                    trace,
                })
            }
            InferPayload::Loadable(loadable) => {
                let (run, trace) = self.run_core(&loadable, trace)?;
                Ok(InferResponse {
                    runs: vec![run],
                    burst_fps: None,
                    dma_transfers: 1,
                    batch_slabs: None,
                    trace,
                })
            }
            InferPayload::Batch { model, inputs } => self.run_batch(&model, &inputs, trace),
            InferPayload::Burst { model, inputs } => self.run_burst(&model, &inputs, trace),
        }
    }

    /// Compiles and runs one inference.
    pub fn infer(&self, model: &QuantMlp, pixels: &[u8]) -> Result<MeasuredRun, DriverError> {
        let resp = self.run(InferRequest::single(model, pixels.to_vec()))?;
        resp.runs
            .into_iter()
            .next()
            .ok_or(DriverError::EmptyResponse)
    }

    /// Runs a pre-compiled loadable (on the cycle-exact fast path; the
    /// `fast_path` differential suite pins it to the tick path).
    pub fn run_loadable(&self, loadable: &Loadable) -> Result<MeasuredRun, DriverError> {
        let (run, _) = self.run_core(loadable, None)?;
        Ok(run)
    }

    /// [`run_loadable`](Driver::run_loadable), with the source model
    /// the loadable claims to implement. Under
    /// [`strict_equiv`](DriverBuilder::strict_equiv) the pre-flight
    /// adds the translation-validation third tier (NPC021–NPC026)
    /// against `source`; otherwise the claim is ignored and the call is
    /// identical to `run_loadable`. The `netpu-fleet` compiled-model
    /// cache admits through this, so a strict-equiv fleet certifies
    /// every model exactly once, at cache-admission time.
    pub fn run_loadable_against(
        &self,
        loadable: &Loadable,
        source: &QuantMlp,
    ) -> Result<MeasuredRun, DriverError> {
        let (run, _) = self.run_core_against(loadable, None, Some(source))?;
        Ok(run)
    }

    /// Streams a pre-packaged burst of inferences through one DMA
    /// transfer (one setup cost for the whole burst), returning the
    /// classes and the sustained rate in frames per second.
    pub fn infer_burst(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
    ) -> Result<(Vec<usize>, f64), DriverError> {
        let resp = self.run(InferRequest::burst(model, inputs.to_vec()))?;
        let fps = resp.burst_fps.unwrap_or(0.0);
        Ok((resp.classes(), fps))
    }

    /// Runs a batch of inputs against one model.
    ///
    /// The accelerator's latency is input-independent for a fixed model
    /// (a property the workspace test suite enforces), so the cycle
    /// model runs **once** — on the first frame — and its timing, power
    /// and stream figures are memoized for the rest. Per-frame values
    /// (class, scores) come from the cheapest bit-exact kernel the
    /// model admits ([`BatchEngine`]): fully binary models sweep full
    /// 64-image slabs through the batch-major bitsliced kernel, with
    /// whole slabs as the unit of rayon parallel work and only the
    /// sub-slab tail falling back to the per-frame packed walk; other
    /// models keep the per-frame packed fan-out.
    pub fn infer_batch(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
    ) -> Result<Vec<MeasuredRun>, DriverError> {
        let resp = self.run(InferRequest::batch(model, inputs.to_vec()))?;
        Ok(resp.runs)
    }

    /// Streams one loadable, optionally with a bounded event trace.
    fn run_core(
        &self,
        loadable: &Loadable,
        trace_capacity: Option<usize>,
    ) -> Result<(MeasuredRun, Option<Vec<TraceEvent>>), DriverError> {
        self.run_core_against(loadable, trace_capacity, None)
    }

    /// [`run_core`](Driver::run_core), with the request's claimed
    /// source model when the payload carried one — the hook the
    /// `strict_equiv` third admission tier hangs off.
    fn run_core_against(
        &self,
        loadable: &Loadable,
        trace_capacity: Option<usize>,
        source: Option<&QuantMlp>,
    ) -> Result<(MeasuredRun, Option<Vec<TraceEvent>>), DriverError> {
        // Static pre-flight (DESIGN.md §4.3–4.4, §4.8). Structural
        // errors mark streams the accelerator would reject, stall on,
        // or panic over and always refuse admission; error-class range
        // findings (provable accumulator/comparator unsoundness)
        // refuse only under strict admission; and when the request
        // carries its source model and `strict_equiv` is on, symbolic
        // inequivalence against that source refuses too. Either way
        // rejected streams never cost simulation or DMA time. The gate
        // itself is the shared `AdmissionVerdict` policy, so this
        // decision is identical to the serving layers' and the
        // fuzzer's.
        let (report, strict_equiv) = match source {
            Some(model) if self.strict_equiv => (
                netpu_check::check_words_against(&loadable.words, model, &self.hw),
                true,
            ),
            _ => (netpu_check::check(loadable, &self.hw), false),
        };
        if let AdmissionVerdict::Rejected(reason) =
            AdmissionVerdict::from_report_tiers(report, self.strict_range, strict_equiv)
        {
            return Err(DriverError::Rejected(reason));
        }
        let sink = self.trace_sink.as_deref();
        let (run, trace) = match (trace_capacity, sink) {
            (None, None) => (
                run_inference_fast(&self.hw, loadable.words.clone())
                    .map_err(DriverError::Accelerator)?,
                None,
            ),
            (Some(cap), None) => {
                let mut tracer = Tracer::bounded(cap);
                let run = run_inference_hooked(&self.hw, loadable.words.clone(), &mut tracer)
                    .map_err(DriverError::Accelerator)?;
                (run, Some(tracer.into_events()))
            }
            (cap, Some(sink)) => {
                let mut tracer = Tracer::bounded(cap.unwrap_or(SINK_TRACE_EVENTS));
                let mut probe = if self.probe_datapath {
                    DatapathProbe::enabled()
                } else {
                    DatapathProbe::disabled()
                };
                let outcome = run_inference_observed(
                    &self.hw,
                    loadable.words.clone(),
                    &mut tracer,
                    &mut probe,
                );
                // Forward to the sink even when the run failed — a
                // failing stream's events are exactly what an anomaly
                // trace exists to capture.
                let events = tracer.into_events();
                let mut t_end = 0.0f64;
                for ev in &events {
                    let t_us = netpu_sim::cycles_to_us(ev.cycle, self.hw.clock_mhz);
                    t_end = t_end.max(t_us);
                    sink.record(
                        t_us,
                        netpu_trace::TraceEvent::Sim {
                            cycle: ev.cycle,
                            scope: ev.scope.to_string(),
                            message: ev.message.clone(),
                        },
                    );
                }
                for sample in probe.samples() {
                    sink.record(t_end, netpu_trace::TraceEvent::probe(sample));
                }
                let run = outcome.map_err(DriverError::Accelerator)?;
                // Annotate the trace with the static timing certificate
                // next to the simulator's own count, so `xtask replay`
                // can cross-check the closed-form model (DESIGN.md
                // §4.9) against every recorded run.
                if let Some(predicted) = netpu_check::predict_cycles(&loadable.words, &self.hw) {
                    sink.record(
                        t_end,
                        netpu_trace::TraceEvent::Meta {
                            key: "timing.predicted_cycles".to_string(),
                            value: predicted.to_string(),
                        },
                    );
                    sink.record(
                        t_end,
                        netpu_trace::TraceEvent::Meta {
                            key: "timing.recorded_cycles".to_string(),
                            value: run.cycles.to_string(),
                        },
                    );
                }
                (run, cap.map(|_| events))
            }
        };
        Ok((self.measure(&run, loadable.len()), trace))
    }

    /// Attaches the DMA and power models to one simulated run.
    fn measure(&self, run: &InferenceRun, stream_words: usize) -> MeasuredRun {
        let measured =
            self.dma
                .measured_latency_us(run.latency_us, stream_words, self.hw.clock_mhz);
        let util = netpu_utilization(&self.hw);
        let power = self.power.wall_power_w(&util, self.hw.clock_mhz);
        MeasuredRun {
            class: run.class,
            sim_latency_us: run.latency_us,
            measured_latency_us: measured,
            power_w: power,
            energy_uj: power * measured,
            stream_words,
            cycles: run.cycles,
            probabilities: run.probabilities.clone(),
        }
    }

    fn run_batch(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
        trace_capacity: Option<usize>,
    ) -> Result<InferResponse, DriverError> {
        let first = match inputs.first() {
            Some(f) => f,
            None => {
                return Ok(InferResponse {
                    runs: Vec::new(),
                    burst_fps: None,
                    dma_transfers: 0,
                    batch_slabs: Some(SlabBreakdown::default()),
                    trace: None,
                })
            }
        };
        // Same validation `Loadable::replace_input` performs on the
        // sequential path, hoisted in front of any simulation time.
        let expected = model.input.len;
        for pixels in inputs {
            if pixels.len() != expected {
                return Err(DriverError::Compile(StreamError::InputLength {
                    expected,
                    got: pixels.len(),
                }));
            }
        }
        let loadable = compile(model, first).map_err(DriverError::Compile)?;
        let (template, trace) = self.run_core_against(&loadable, trace_capacity, Some(model))?;
        let softmax = self.hw.softmax_output;
        let engine = BatchEngine::new(model);
        // Slab sweep: fully binary models advance 64 images per u64
        // lane through the bitsliced kernel, so the unit of parallel
        // work is one slab (the sub-slab tail falls back to the
        // per-frame packed walk inside the engine). Fallback models
        // parallelize per frame, where slab-sized chunks would only
        // serialize work.
        let runs: Vec<MeasuredRun> = inputs
            .par_chunks(engine.chunk_width())
            .map(|slab| {
                engine
                    .run_slab(slab)
                    .into_iter()
                    .map(|out| MeasuredRun {
                        class: out.class,
                        probabilities: softmax.then(|| netpu_arith::softmax::softmax(&out.scores)),
                        ..template.clone()
                    })
                    .collect::<Vec<MeasuredRun>>()
            })
            .collect::<Vec<Vec<MeasuredRun>>>()
            .into_iter()
            .flatten()
            .collect();
        debug_assert_eq!(runs.first().map(|r| r.class), Some(template.class));
        Ok(InferResponse {
            runs,
            burst_fps: None,
            dma_transfers: inputs.len(),
            batch_slabs: Some(engine.slab_breakdown(inputs.len())),
            trace,
        })
    }

    fn run_burst(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
        trace_capacity: Option<usize>,
    ) -> Result<InferResponse, DriverError> {
        if inputs.is_empty() {
            return Ok(InferResponse {
                runs: Vec::new(),
                burst_fps: Some(0.0),
                dma_transfers: 0,
                batch_slabs: None,
                trace: None,
            });
        }
        let words =
            netpu_compiler::batch_stream(model, inputs, netpu_compiler::PackingMode::Lanes8)
                .map_err(DriverError::Compile)?;
        let total_words = words.len();
        let stream = netpu_sim::StreamSource::new(words, 1);
        let mut netpu =
            netpu_core::NetPu::new(self.hw, stream).map_err(DriverError::Accelerator)?;
        if let Some(cap) = trace_capacity {
            netpu = netpu.with_tracer(Tracer::bounded(cap));
        }
        let cycles = netpu_core::netpu::run_to_completion_fast(&mut netpu)
            .map_err(DriverError::Accelerator)?;
        let trace = trace_capacity.map(|_| netpu.take_tracer().into_events());
        let n = inputs.len();
        let total_us = self.dma.setup_us + netpu_sim::cycles_to_us(cycles, self.hw.clock_mhz);
        let fps = n as f64 * 1e6 / total_us;
        let util = netpu_utilization(&self.hw);
        let power = self.power.wall_power_w(&util, self.hw.clock_mhz);
        // Per-frame decomposition: frame i spans the cycles between the
        // (i−1)-th and i-th result words (the last frame absorbs the
        // stream tail), and the single DMA setup is amortized evenly,
        // so the per-frame figures sum back to the burst totals.
        let setup_share = self.dma.setup_us / n as f64;
        let base_words = total_words / n;
        let results = netpu.results().to_vec();
        let mut runs = Vec::with_capacity(results.len());
        let mut prev_end = 0u64;
        for (i, (class, _score, done_at)) in results.iter().enumerate() {
            let end = if i + 1 == results.len() {
                cycles
            } else {
                done_at + 1
            };
            let frame_cycles = end.saturating_sub(prev_end);
            prev_end = end;
            let sim_us = netpu_sim::cycles_to_us(frame_cycles, self.hw.clock_mhz);
            let measured = sim_us + setup_share;
            runs.push(MeasuredRun {
                class: *class,
                sim_latency_us: sim_us,
                measured_latency_us: measured,
                power_w: power,
                energy_uj: power * measured,
                stream_words: if i == 0 {
                    total_words - base_words * (n - 1)
                } else {
                    base_words
                },
                cycles: frame_cycles,
                probabilities: None,
            });
        }
        Ok(InferResponse {
            runs,
            burst_fps: Some(fps),
            dma_transfers: 1,
            batch_slabs: None,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use netpu_nn::{dataset, reference};

    #[test]
    fn measured_run_is_consistent() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let px = vec![100u8; 784];
        let run = driver.infer(&model, &px).unwrap();
        assert_eq!(run.class, reference::infer(&model, &px));
        assert!(run.measured_latency_us > run.sim_latency_us);
        assert!((run.measured_latency_us - run.sim_latency_us - 5.9).abs() < 1e-6);
        assert!((6.0..8.0).contains(&run.power_w));
        assert!(run.energy_uj > 0.0);
    }

    #[test]
    #[allow(deprecated)]
    fn paper_setup_alias_matches_builder_defaults() {
        let alias = Driver::paper_setup();
        let built = Driver::builder().build();
        assert_eq!(format!("{alias:?}"), format!("{built:?}"));
        assert_eq!(format!("{alias:?}"), format!("{:?}", Driver::default()));
    }

    #[test]
    fn run_single_matches_infer_wrapper() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(8, BnMode::Folded)
            .unwrap();
        let px = vec![31u8; 784];
        let resp = driver
            .run(InferRequest::single(&model, px.clone()))
            .unwrap();
        assert_eq!(resp.runs.len(), 1);
        assert_eq!(resp.dma_transfers, 1);
        assert_eq!(resp.burst_fps, None);
        assert_eq!(resp.runs[0], driver.infer(&model, &px).unwrap());
        assert_eq!(resp.total_stream_words(), resp.runs[0].stream_words);
        assert!((resp.total_latency_us() - resp.runs[0].measured_latency_us).abs() < 1e-12);
    }

    #[test]
    fn run_accepts_shared_models() {
        // The serving layer enqueues Arc-backed requests; results must
        // be identical to the borrowed path.
        let driver = Driver::builder().build();
        let model = std::sync::Arc::new(
            ZooModel::TfcW1A1
                .build_untrained(12, BnMode::Folded)
                .unwrap(),
        );
        let px = vec![77u8; 784];
        let shared = driver
            .run(InferRequest::single(model.clone(), px.clone()))
            .unwrap();
        let borrowed = driver
            .run(InferRequest::single(model.as_ref(), px))
            .unwrap();
        assert_eq!(shared, borrowed);
    }

    #[test]
    #[allow(deprecated)]
    fn traced_requests_return_events() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        let resp = driver
            .run(InferRequest::single(&model, vec![9u8; 784]).with_trace(64))
            .unwrap();
        let events = resp.trace.expect("trace requested");
        assert!(!events.is_empty());
        assert!(events.len() <= 64);
        // The untraced run is unaffected.
        let plain = driver
            .run(InferRequest::single(&model, vec![9u8; 784]))
            .unwrap();
        assert_eq!(plain.trace, None);
        assert_eq!(plain.runs, resp.runs);
    }

    #[test]
    fn error_sources_walk_to_the_stream_error() {
        use std::error::Error;
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        let err = driver.infer(&model, &[0u8; 7]).unwrap_err();
        let source = err.source().expect("compile errors carry a source");
        assert!(source.downcast_ref::<StreamError>().is_some());
        // And serving-layer variants format + chain cleanly.
        let t = DriverError::Timeout {
            deadline_us: 10.0,
            elapsed_us: 25.0,
        };
        assert!(t.to_string().contains("deadline"));
        assert!(t.source().is_none());
    }

    #[test]
    fn batch_reuses_compiled_model() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(4, 3, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let runs = driver.infer_batch(&model, &inputs).unwrap();
        assert_eq!(runs.len(), 4);
        for (run, e) in runs.iter().zip(&ds.examples) {
            assert_eq!(run.class, reference::infer(&model, &e.pixels));
        }
        // Latency is input-independent for a fixed model.
        assert!(runs.windows(2).all(|w| w[0].cycles == w[1].cycles));
        assert!(driver.infer_batch(&model, &[]).unwrap().is_empty());
    }

    #[test]
    fn batch_matches_per_frame_inference() {
        // The memoized parallel batch must agree with running each
        // frame through the full driver individually.
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW2A2
            .build_untrained(7, BnMode::Hardware)
            .unwrap();
        let ds = dataset::generate(6, 11, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let batch = driver.infer_batch(&model, &inputs).unwrap();
        for (run, pixels) in batch.iter().zip(&inputs) {
            let single = driver.infer(&model, pixels).unwrap();
            assert_eq!(run, &single);
        }
    }

    #[test]
    fn batch_validates_every_frame_length() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(5, BnMode::Folded)
            .unwrap();
        let inputs = vec![vec![1u8; 784], vec![2u8; 10], vec![3u8; 784]];
        assert!(matches!(
            driver.infer_batch(&model, &inputs),
            Err(DriverError::Compile(StreamError::InputLength {
                expected: 784,
                got: 10,
            }))
        ));
    }

    #[test]
    fn batch_softmax_probabilities_are_per_frame() {
        let driver = Driver::builder()
            .hw(netpu_core::HwConfig {
                softmax_output: true,
                ..netpu_core::HwConfig::paper_instance()
            })
            .build();
        let model = ZooModel::TfcW1A1
            .build_untrained(6, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(3, 17, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let runs = driver.infer_batch(&model, &inputs).unwrap();
        for (run, pixels) in runs.iter().zip(&inputs) {
            let probs = run.probabilities.as_ref().expect("probabilities");
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let single = driver.infer(&model, pixels).unwrap();
            assert_eq!(run.probabilities, single.probabilities);
        }
    }

    #[test]
    fn burst_amortises_dma_setup() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(6, 8, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let (classes, fps) = driver.infer_burst(&model, &inputs).unwrap();
        assert_eq!(classes.len(), 6);
        for (c, e) in classes.iter().zip(&ds.examples) {
            assert_eq!(*c, reference::infer(&model, &e.pixels));
        }
        // One DMA setup for six frames beats six setups.
        let single = driver.infer(&model, &inputs[0]).unwrap();
        let per_frame_fps = 1e6 / single.measured_latency_us;
        assert!(fps > per_frame_fps, "burst {fps} !> single {per_frame_fps}");
        assert_eq!(driver.infer_burst(&model, &[]).unwrap().0.len(), 0);
    }

    #[test]
    fn burst_frame_decomposition_sums_to_the_totals() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(5, 8, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let resp = driver
            .run(InferRequest::burst(&model, inputs.clone()))
            .unwrap();
        assert_eq!(resp.runs.len(), 5);
        assert_eq!(resp.dma_transfers, 1);
        let fps = resp.burst_fps.expect("burst rate");
        // Σ per-frame measured = burst wall time; Σ words = stream len.
        let total_us = resp.total_latency_us();
        assert!((fps - 5.0 * 1e6 / total_us).abs() < 1e-6, "fps {fps}");
        let words =
            netpu_compiler::batch_stream(&model, &inputs, netpu_compiler::PackingMode::Lanes8)
                .unwrap()
                .len();
        assert_eq!(resp.total_stream_words(), words);
        let total_cycles: u64 = resp.runs.iter().map(|r| r.cycles).sum();
        assert!(resp.runs.iter().all(|r| r.cycles > 0));
        assert!(total_cycles > 0);
    }

    #[test]
    fn softmax_instances_report_probabilities() {
        let driver = Driver::builder()
            .hw(netpu_core::HwConfig {
                softmax_output: true,
                ..netpu_core::HwConfig::paper_instance()
            })
            .build();
        let model = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        let run = driver.infer(&model, &vec![50u8; 784]).unwrap();
        let probs = run.probabilities.expect("probabilities present");
        assert_eq!(probs.len(), 10);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The paper setup reports none.
        let plain = Driver::builder()
            .build()
            .infer(&model, &vec![50u8; 784])
            .unwrap();
        assert!(plain.probabilities.is_none());
    }

    #[test]
    fn trace_sink_observes_sim_and_probe_events() {
        use netpu_trace::{MemorySink, TraceEvent as Tev};
        let sink = Arc::new(MemorySink::new());
        let driver = Driver::builder()
            .trace_sink(sink.clone())
            .probe_datapath(true)
            .build();
        let model = ZooModel::TfcW1A1
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        let resp = driver
            .run(InferRequest::single(&model, vec![9u8; 784]))
            .unwrap();
        // Sink runs do not attach an inline trace to the response.
        assert_eq!(resp.trace, None);
        let records = sink.records();
        assert!(records.iter().any(|r| matches!(r.event, Tev::Sim { .. })));
        assert!(records.iter().any(|r| matches!(r.event, Tev::Probe { .. })));
        // Sim events carry virtual timestamps derived from their cycle.
        let max_t = records.iter().map(|r| r.t_us).fold(0.0f64, f64::max);
        assert!(max_t > 0.0);
        // Every sink-traced run is annotated with the static timing
        // certificate next to the simulator's count — and they agree.
        let meta = |key: &str| {
            records.iter().find_map(|r| match &r.event {
                Tev::Meta { key: k, value } if k == key => Some(value.clone()),
                _ => None,
            })
        };
        let predicted = meta("timing.predicted_cycles").expect("predicted-cycles annotation");
        let recorded = meta("timing.recorded_cycles").expect("recorded-cycles annotation");
        assert_eq!(predicted, recorded, "timing certificate diverged");
        // The run itself is unaffected by observation.
        let plain = Driver::builder()
            .build()
            .run(InferRequest::single(&model, vec![9u8; 784]))
            .unwrap();
        assert_eq!(plain.runs, resp.runs);
    }

    #[test]
    fn rejected_streams_carry_the_unified_reason() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        let mut loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
        loadable.words[0] ^= 1; // break the magic word
        let err = driver.run(InferRequest::loadable(loadable)).unwrap_err();
        let DriverError::Rejected(reason) = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert_eq!(reason.code(), "INVALID_STREAM");
        assert!(!reason.is_transient());
        assert!(reason.rules().iter().any(|(rule, _)| rule.id() == "NPC001"));
        // The full verifier report stays reachable for diagnostics.
        assert!(reason.report().expect("report").has_structural_errors());
    }

    #[test]
    fn strict_equiv_admits_honest_requests() {
        let driver = Driver::builder().strict_equiv(true).build();
        let model = ZooModel::TfcW1A1
            .build_untrained(21, BnMode::Folded)
            .unwrap();
        let px = vec![100u8; 784];
        let run = driver.infer(&model, &px).unwrap();
        assert_eq!(run.class, reference::infer(&model, &px));
        // And the decision matches the two-tier driver exactly.
        let plain = Driver::builder().build().infer(&model, &px).unwrap();
        assert_eq!(run, plain);
    }

    #[test]
    fn probe_default_follows_the_trace_sink() {
        use netpu_trace::MemorySink;
        let sink = Arc::new(MemorySink::new());
        // A sink with no explicit probe choice probes by default...
        let probed = Driver::builder().trace_sink(sink.clone()).build();
        assert!(probed.probe_datapath);
        // ...an explicit opt-out wins...
        let quiet = Driver::builder()
            .trace_sink(sink)
            .probe_datapath(false)
            .build();
        assert!(!quiet.probe_datapath);
        // ...and sinkless drivers never probe.
        assert!(!Driver::builder().build().probe_datapath);
    }

    #[test]
    fn sink_runs_record_probe_samples_by_default() {
        use netpu_trace::{MemorySink, TraceEvent as Tev};
        let sink = Arc::new(MemorySink::new());
        let driver = Driver::builder().trace_sink(sink.clone()).build();
        let model = ZooModel::TfcW1A1
            .build_untrained(15, BnMode::Folded)
            .unwrap();
        driver
            .run(InferRequest::single(&model, vec![42u8; 784]))
            .unwrap();
        assert!(sink
            .records()
            .iter()
            .any(|r| matches!(r.event, Tev::Probe { .. })));
    }

    #[test]
    fn compile_errors_surface() {
        let driver = Driver::builder().build();
        let model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        assert!(matches!(
            driver.infer(&model, &[0u8; 7]),
            Err(DriverError::Compile(StreamError::InputLength { .. }))
        ));
    }
}
