//! The host-side driver.
//!
//! NetPU-M's selling point is that the "runtime environment" collapses
//! to data streaming: the host compiles a model + input into a loadable
//! once, pushes it through DMA, and reads one result word back. This
//! driver wraps that flow and attaches the DMA and power models so
//! callers get Table VI-style *measured* numbers.

use crate::dma::DmaModel;
use crate::power::PowerParams;
use netpu_compiler::{compile, Loadable, StreamError};
use netpu_core::netpu::{run_inference_fast, InferenceRun, NetPuError};
use netpu_core::resources::netpu_utilization;
use netpu_core::HwConfig;
use netpu_nn::{reference, QuantMlp};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One measured inference.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasuredRun {
    /// Predicted class.
    pub class: usize,
    /// Simulated accelerator latency (Table V style), µs.
    pub sim_latency_us: f64,
    /// Measured end-to-end latency incl. DMA/PS overhead (Table VI
    /// style), µs.
    pub measured_latency_us: f64,
    /// Modeled wall power, W.
    pub power_w: f64,
    /// Energy per inference, µJ.
    pub energy_uj: f64,
    /// Stream length in 64-bit words.
    pub stream_words: usize,
    /// Accelerator cycles.
    pub cycles: u64,
    /// SoftMax class probabilities (instances configured with
    /// `softmax_output` only).
    pub probabilities: Option<Vec<f64>>,
}

/// Driver errors.
#[derive(Clone, PartialEq, Debug)]
pub enum DriverError {
    /// Compilation of the model/input failed.
    Compile(StreamError),
    /// The accelerator rejected or failed on the stream.
    Accelerator(NetPuError),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::Compile(e) => write!(f, "compile: {e}"),
            DriverError::Accelerator(e) => write!(f, "accelerator: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// Host driver bundling the accelerator, DMA, and power models.
///
/// ```
/// use netpu_runtime::Driver;
/// use netpu_nn::{export::BnMode, zoo::ZooModel};
/// let driver = Driver::paper_setup();
/// let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
/// let run = driver.infer(&model, &vec![0u8; 784]).unwrap();
/// // Measured latency = simulated latency + the ~5.9 µs DMA/PS setup.
/// assert!(run.measured_latency_us > run.sim_latency_us);
/// assert!((6.0..8.0).contains(&run.power_w));
/// ```
#[derive(Clone, Debug)]
pub struct Driver {
    /// Accelerator instance configuration.
    pub hw: HwConfig,
    /// DMA channel model.
    pub dma: DmaModel,
    /// Power coefficients of the hosting board.
    pub power: PowerParams,
}

impl Driver {
    /// The paper's measurement setup: the Table V instance on an
    /// Ultra96-V2 behind the Zynq UltraScale+ PS DMA.
    pub fn paper_setup() -> Driver {
        Driver {
            hw: HwConfig::paper_instance(),
            dma: DmaModel::zynq_uls(),
            power: PowerParams::ultra96(),
        }
    }

    /// Compiles and runs one inference.
    pub fn infer(&self, model: &QuantMlp, pixels: &[u8]) -> Result<MeasuredRun, DriverError> {
        let loadable = compile(model, pixels).map_err(DriverError::Compile)?;
        self.run_loadable(&loadable)
    }

    /// Runs a pre-compiled loadable (on the cycle-exact fast path; the
    /// `fast_path` differential suite pins it to the tick path).
    pub fn run_loadable(&self, loadable: &Loadable) -> Result<MeasuredRun, DriverError> {
        let run: InferenceRun = run_inference_fast(&self.hw, loadable.words.clone())
            .map_err(DriverError::Accelerator)?;
        let measured =
            self.dma
                .measured_latency_us(run.latency_us, loadable.len(), self.hw.clock_mhz);
        let util = netpu_utilization(&self.hw);
        let power = self.power.wall_power_w(&util, self.hw.clock_mhz);
        Ok(MeasuredRun {
            class: run.class,
            sim_latency_us: run.latency_us,
            measured_latency_us: measured,
            power_w: power,
            energy_uj: power * measured,
            stream_words: loadable.len(),
            cycles: run.cycles,
            probabilities: run.probabilities,
        })
    }

    /// Streams a pre-packaged burst of inferences through one DMA
    /// transfer (one setup cost for the whole burst), returning the
    /// classes and the sustained rate in frames per second.
    pub fn infer_burst(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
    ) -> Result<(Vec<usize>, f64), DriverError> {
        if inputs.is_empty() {
            return Ok((Vec::new(), 0.0));
        }
        let words =
            netpu_compiler::batch_stream(model, inputs, netpu_compiler::PackingMode::Lanes8)
                .map_err(DriverError::Compile)?;
        let stream = netpu_sim::StreamSource::new(words, 1);
        let mut netpu =
            netpu_core::NetPu::new(self.hw, stream).map_err(DriverError::Accelerator)?;
        let cycles = netpu_core::netpu::run_to_completion_fast(&mut netpu)
            .map_err(DriverError::Accelerator)?;
        let classes = netpu.results().iter().map(|&(c, _, _)| c).collect();
        let total_us = self.dma.setup_us + netpu_sim::cycles_to_us(cycles, self.hw.clock_mhz);
        Ok((classes, inputs.len() as f64 * 1e6 / total_us))
    }

    /// Runs a batch of inputs against one model.
    ///
    /// The accelerator's latency is input-independent for a fixed model
    /// (a property the workspace test suite enforces), so the cycle
    /// model runs **once** — on the first frame — and its timing, power
    /// and stream figures are memoized for the rest. Each remaining
    /// frame recomputes only the numeric datapath (class, scores) via
    /// the bit-exact software reference — with binary layers pre-packed
    /// once for the whole batch ([`reference::PackedMlp`]) — and the
    /// frames fan out across worker threads with rayon.
    pub fn infer_batch(
        &self,
        model: &QuantMlp,
        inputs: &[Vec<u8>],
    ) -> Result<Vec<MeasuredRun>, DriverError> {
        let first = match inputs.first() {
            Some(f) => f,
            None => return Ok(Vec::new()),
        };
        let loadable = compile(model, first).map_err(DriverError::Compile)?;
        let template = self.run_loadable(&loadable)?;
        let expected = model.input.len;
        let softmax = self.hw.softmax_output;
        let packed = reference::PackedMlp::new(model);
        let rest: Result<Vec<MeasuredRun>, DriverError> = inputs[1..]
            .par_iter()
            .map(|pixels| {
                // Same validation `Loadable::replace_input` performs on
                // the sequential path.
                if pixels.len() != expected {
                    return Err(DriverError::Compile(StreamError::InputLength {
                        expected,
                        got: pixels.len(),
                    }));
                }
                let trace = packed.infer_traced(pixels);
                Ok(MeasuredRun {
                    class: trace.class,
                    probabilities: softmax.then(|| netpu_arith::softmax::softmax(&trace.scores)),
                    ..template.clone()
                })
            })
            .collect();
        let mut runs = Vec::with_capacity(inputs.len());
        runs.push(template);
        runs.extend(rest?);
        Ok(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use netpu_nn::{dataset, reference};

    #[test]
    fn measured_run_is_consistent() {
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let px = vec![100u8; 784];
        let run = driver.infer(&model, &px).unwrap();
        assert_eq!(run.class, reference::infer(&model, &px));
        assert!(run.measured_latency_us > run.sim_latency_us);
        assert!((run.measured_latency_us - run.sim_latency_us - 5.9).abs() < 1e-6);
        assert!((6.0..8.0).contains(&run.power_w));
        assert!(run.energy_uj > 0.0);
    }

    #[test]
    fn batch_reuses_compiled_model() {
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(4, 3, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let runs = driver.infer_batch(&model, &inputs).unwrap();
        assert_eq!(runs.len(), 4);
        for (run, e) in runs.iter().zip(&ds.examples) {
            assert_eq!(run.class, reference::infer(&model, &e.pixels));
        }
        // Latency is input-independent for a fixed model.
        assert!(runs.windows(2).all(|w| w[0].cycles == w[1].cycles));
        assert!(driver.infer_batch(&model, &[]).unwrap().is_empty());
    }

    #[test]
    fn batch_matches_per_frame_inference() {
        // The memoized parallel batch must agree with running each
        // frame through the full driver individually.
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW2A2
            .build_untrained(7, BnMode::Hardware)
            .unwrap();
        let ds = dataset::generate(6, 11, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let batch = driver.infer_batch(&model, &inputs).unwrap();
        for (run, pixels) in batch.iter().zip(&inputs) {
            let single = driver.infer(&model, pixels).unwrap();
            assert_eq!(run, &single);
        }
    }

    #[test]
    fn batch_validates_every_frame_length() {
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW1A1
            .build_untrained(5, BnMode::Folded)
            .unwrap();
        let inputs = vec![vec![1u8; 784], vec![2u8; 10], vec![3u8; 784]];
        assert!(matches!(
            driver.infer_batch(&model, &inputs),
            Err(DriverError::Compile(StreamError::InputLength {
                expected: 784,
                got: 10,
            }))
        ));
    }

    #[test]
    fn batch_softmax_probabilities_are_per_frame() {
        let driver = Driver {
            hw: netpu_core::HwConfig {
                softmax_output: true,
                ..netpu_core::HwConfig::paper_instance()
            },
            ..Driver::paper_setup()
        };
        let model = ZooModel::TfcW1A1
            .build_untrained(6, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(3, 17, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let runs = driver.infer_batch(&model, &inputs).unwrap();
        for (run, pixels) in runs.iter().zip(&inputs) {
            let probs = run.probabilities.as_ref().expect("probabilities");
            assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            let single = driver.infer(&model, pixels).unwrap();
            assert_eq!(run.probabilities, single.probabilities);
        }
    }

    #[test]
    fn burst_amortises_dma_setup() {
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW1A1
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        let ds = dataset::generate(6, 8, &dataset::GeneratorConfig::default());
        let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
        let (classes, fps) = driver.infer_burst(&model, &inputs).unwrap();
        assert_eq!(classes.len(), 6);
        for (c, e) in classes.iter().zip(&ds.examples) {
            assert_eq!(*c, reference::infer(&model, &e.pixels));
        }
        // One DMA setup for six frames beats six setups.
        let single = driver.infer(&model, &inputs[0]).unwrap();
        let per_frame_fps = 1e6 / single.measured_latency_us;
        assert!(fps > per_frame_fps, "burst {fps} !> single {per_frame_fps}");
        assert_eq!(driver.infer_burst(&model, &[]).unwrap().0.len(), 0);
    }

    #[test]
    fn softmax_instances_report_probabilities() {
        let driver = Driver {
            hw: netpu_core::HwConfig {
                softmax_output: true,
                ..netpu_core::HwConfig::paper_instance()
            },
            ..Driver::paper_setup()
        };
        let model = ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap();
        let run = driver.infer(&model, &vec![50u8; 784]).unwrap();
        let probs = run.probabilities.expect("probabilities present");
        assert_eq!(probs.len(), 10);
        assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The paper setup reports none.
        let plain = Driver::paper_setup()
            .infer(&model, &vec![50u8; 784])
            .unwrap();
        assert!(plain.probabilities.is_none());
    }

    #[test]
    fn compile_errors_surface() {
        let driver = Driver::paper_setup();
        let model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        assert!(matches!(
            driver.infer(&model, &[0u8; 7]),
            Err(DriverError::Compile(StreamError::InputLength { .. }))
        ));
    }
}
