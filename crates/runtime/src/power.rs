//! Wall-power model.
//!
//! Table VI reports wall-meter power (`P_wall`): the whole board, not
//! just the programmable logic. We model it as platform static power
//! plus activity-proportional dynamic power over the occupied resources
//! scaled by clock frequency:
//!
//! `P = static + f·(c_lut·LUTs + c_dsp·DSPs + c_bram·BRAM36)`
//!
//! Calibration anchors: NetPU-M on Ultra96-V2 at 100 MHz ≈ 6.9–7.05 W;
//! FINN `max` on a Zynq-7000 board at 200 MHz ≈ 21.2–22.6 W; FINN `fix`
//! ≈ 7.9–8.1 W. The 28 nm Zynq-7000 fabric burns several times more
//! energy per resource than the 16 nm UltraScale+, hence per-platform
//! coefficients.

use netpu_sim::fpga::Utilization;
use serde::{Deserialize, Serialize};

/// Per-platform power coefficients.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Board static power (PS, DRAM, regulators, fan) in watts.
    pub static_w: f64,
    /// Watts per LUT per MHz.
    pub lut_w_mhz: f64,
    /// Watts per DSP slice per MHz.
    pub dsp_w_mhz: f64,
    /// Watts per BRAM36 per MHz.
    pub bram_w_mhz: f64,
}

impl PowerParams {
    /// Ultra96-V2 (16 nm Zynq UltraScale+ ZU3EG) coefficients.
    pub fn ultra96() -> PowerParams {
        PowerParams {
            static_w: 4.9,
            lut_w_mhz: 0.25e-6,
            dsp_w_mhz: 1.5e-5,
            bram_w_mhz: 1.0e-5,
        }
    }

    /// Zynq-7000 ZC706 (28 nm) coefficients.
    pub fn zc706() -> PowerParams {
        PowerParams {
            static_w: 7.0,
            lut_w_mhz: 0.8e-6,
            dsp_w_mhz: 4.0e-5,
            bram_w_mhz: 2.0e-5,
        }
    }

    /// Wall power of a design occupying `util` at `clock_mhz`.
    pub fn wall_power_w(&self, util: &Utilization, clock_mhz: f64) -> f64 {
        self.static_w
            + clock_mhz
                * (self.lut_w_mhz * util.luts as f64
                    + self.dsp_w_mhz * util.dsps as f64
                    + self.bram_w_mhz * util.bram36)
    }

    /// Energy of one inference in microjoules.
    pub fn energy_uj(&self, util: &Utilization, clock_mhz: f64, latency_us: f64) -> f64 {
        self.wall_power_w(util, clock_mhz) * latency_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_core::resources::netpu_utilization;
    use netpu_core::HwConfig;
    use netpu_finn::{instance_utilization, FinnInstance};

    /// Table VI: NetPU-M draws ≈6.86–7.05 W on the Ultra96.
    #[test]
    fn netpu_power_matches_table6() {
        let util = netpu_utilization(&HwConfig::paper_instance());
        let p = PowerParams::ultra96().wall_power_w(&util, 100.0);
        assert!((6.5..=7.4).contains(&p), "NetPU power {p}");
    }

    /// Table VI: FINN max instances ≈21.2–22.6 W, fix ≈7.9–8.1 W.
    #[test]
    fn finn_power_matches_table6() {
        let zc = PowerParams::zc706();
        let max_p = zc.wall_power_w(&instance_utilization(&FinnInstance::sfc_max()), 200.0);
        assert!((18.0..=25.0).contains(&max_p), "SFC-max power {max_p}");
        let lfc_p = zc.wall_power_w(&instance_utilization(&FinnInstance::lfc_max()), 200.0);
        assert!((18.0..=25.0).contains(&lfc_p), "LFC-max power {lfc_p}");
        let fix_p = zc.wall_power_w(&instance_utilization(&FinnInstance::sfc_fix()), 200.0);
        assert!((7.0..=9.0).contains(&fix_p), "SFC-fix power {fix_p}");
    }

    /// The paper's power story: NetPU-M draws less than every FINN
    /// instance.
    #[test]
    fn netpu_draws_less_than_finn() {
        let netpu = PowerParams::ultra96()
            .wall_power_w(&netpu_utilization(&HwConfig::paper_instance()), 100.0);
        for inst in FinnInstance::table6() {
            let finn = PowerParams::zc706().wall_power_w(&instance_utilization(&inst), 200.0);
            assert!(netpu < finn, "{}: {netpu} !< {finn}", inst.name);
        }
    }

    #[test]
    fn energy_scales_with_latency() {
        let util = netpu_utilization(&HwConfig::paper_instance());
        let p = PowerParams::ultra96();
        let e1 = p.energy_uj(&util, 100.0, 100.0);
        let e2 = p.energy_uj(&util, 100.0, 200.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }
}
