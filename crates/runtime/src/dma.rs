//! DMA / Processing System transfer model.
//!
//! The paper's *measured* latencies (Table VI) exceed the simulated ones
//! (Table V) by a near-constant ≈6 µs — the DMA descriptor setup and
//! Zynq UltraScale+ PS control overhead per inference. This module
//! models that path: a per-transfer setup cost plus a bandwidth-bound
//! streaming time, of which the accelerator's own pipeline time is the
//! limiting factor whenever DMA bandwidth ≥ one 64-bit word per cycle.

use serde::{Deserialize, Serialize};

/// DMA channel parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DmaModel {
    /// Per-transfer setup + PS control overhead in microseconds
    /// (descriptor writes, cache maintenance, interrupt handling).
    pub setup_us: f64,
    /// Sustained bandwidth in 64-bit words per accelerator clock cycle.
    pub words_per_cycle: f64,
}

impl Default for DmaModel {
    fn default() -> DmaModel {
        DmaModel::zynq_uls()
    }
}

impl DmaModel {
    /// The Zynq UltraScale+ PS/DMA path of the Ultra96-V2, calibrated to
    /// the Table VI − Table V gap (≈5.9 µs per inference).
    pub fn zynq_uls() -> DmaModel {
        DmaModel {
            setup_us: 5.9,
            words_per_cycle: 1.0,
        }
    }

    /// An ideal channel (no setup, unlimited bandwidth): measured equals
    /// simulated.
    pub fn ideal() -> DmaModel {
        DmaModel {
            setup_us: 0.0,
            words_per_cycle: f64::INFINITY,
        }
    }

    /// Time the channel itself is occupied by one transfer of
    /// `stream_words` words: the per-transfer setup plus the
    /// bandwidth-bound streaming time. This is the *shared-resource*
    /// cost a multi-board host pays per inference — while one board's
    /// loadable streams, no other board can be fed.
    pub fn occupancy_us(&self, stream_words: usize, clock_mhz: f64) -> f64 {
        let streaming = if self.words_per_cycle.is_finite() {
            stream_words as f64 / self.words_per_cycle / clock_mhz
        } else {
            0.0
        };
        self.setup_us + streaming
    }

    /// Wall-clock latency of one inference given the accelerator's
    /// simulated latency and the stream length.
    ///
    /// The accelerator consumes at most one word per cycle, so with
    /// `words_per_cycle ≥ 1` the pipeline time dominates; a slower
    /// channel stretches the transfer instead.
    pub fn measured_latency_us(
        &self,
        sim_latency_us: f64,
        stream_words: usize,
        clock_mhz: f64,
    ) -> f64 {
        let transfer_us = if self.words_per_cycle.is_finite() {
            stream_words as f64 / self.words_per_cycle / clock_mhz
        } else {
            0.0
        };
        self.setup_us + sim_latency_us.max(transfer_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_bandwidth_adds_only_setup() {
        let dma = DmaModel::zynq_uls();
        let m = dma.measured_latency_us(172.165, 10_000, 100.0);
        assert!((m - (172.165 + 5.9)).abs() < 1e-9);
    }

    #[test]
    fn ideal_channel_is_transparent() {
        let dma = DmaModel::ideal();
        assert_eq!(dma.measured_latency_us(42.0, 1_000_000, 100.0), 42.0);
    }

    #[test]
    fn slow_channel_becomes_transfer_bound() {
        let dma = DmaModel {
            setup_us: 1.0,
            words_per_cycle: 0.25,
        };
        // 10,000 words at 0.25 words/cycle and 100 MHz → 400 µs transfer,
        // dominating a 100 µs pipeline.
        let m = dma.measured_latency_us(100.0, 10_000, 100.0);
        assert!((m - 401.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_counts_setup_and_streaming() {
        let dma = DmaModel::zynq_uls();
        // 1,000 words at 1 word/cycle and 100 MHz → 10 µs + 5.9 µs setup.
        assert!((dma.occupancy_us(1_000, 100.0) - 15.9).abs() < 1e-9);
        // An ideal channel is occupied only conceptually: zero time.
        assert_eq!(DmaModel::ideal().occupancy_us(1_000_000, 100.0), 0.0);
    }

    #[test]
    fn table6_gap_reproduced() {
        // Table V simulated vs Table VI measured pairs (µs).
        let pairs = [
            (38.745, 44.64),
            (133.785, 139.75),
            (974.745, 980.63),
            (172.165, 178.18),
            (882.085, 888.0),
            (7408.225, 7414.13),
        ];
        let dma = DmaModel::zynq_uls();
        for (sim, measured) in pairs {
            let m = dma.measured_latency_us(sim, 0, 100.0);
            assert!(
                (m - measured).abs() < 0.3,
                "sim {sim}: model {m} vs measured {measured}"
            );
        }
    }
}
