//! Hardware-configuration file generation.
//!
//! §III.A: *"we created a C++ program to generate the Verilog macro
//! definitions as a hardware configuration file. Based on the
//! generation block we widely applied in our Verilog codes, the NetPU-M
//! project can easily build a suitable project for different FPGA
//! platforms."* This module is that program's equivalent: it renders an
//! [`HwConfig`] as the `` `define `` header the generation blocks would
//! consume, and parses one back — so instance configurations can be
//! exchanged with a hypothetical RTL flow.

use crate::config::{ConfigError, HwConfig, MulImpl};
use netpu_arith::cast;
use std::collections::HashMap;

/// Renders the configuration as a Verilog `` `define `` header.
pub fn to_verilog_macros(cfg: &HwConfig) -> String {
    let on_off = |b: bool| u8::from(b);
    format!(
        "// NetPU-M hardware configuration (generated)\n\
         `define NETPU_LPU_NUM {}\n\
         `define NETPU_TNPU_PER_LPU {}\n\
         `define NETPU_MUL_LANES {}\n\
         `define NETPU_MAX_MT_BITS {}\n\
         `define NETPU_BN_MUL_{}\n\
         `define NETPU_INT_MUL_{}\n\
         `define NETPU_WEIGHT_DOUBLE_BUFFER {}\n\
         `define NETPU_DENSE_WEIGHT_PACKING {}\n\
         `define NETPU_SOFTMAX_OUTPUT {}\n\
         `define NETPU_CLOCK_KHZ {}\n\
         `define NETPU_ACC_BITS {}\n",
        cfg.lpus,
        cfg.tnpus_per_lpu,
        cfg.mul_lanes,
        cfg.max_multithreshold_bits,
        match cfg.bn_mul {
            MulImpl::Dsp => "DSP",
            MulImpl::Lut => "LUT",
        },
        match cfg.int_mul {
            MulImpl::Dsp => "DSP",
            MulImpl::Lut => "LUT",
        },
        on_off(cfg.double_buffered_weights),
        on_off(cfg.dense_weight_packing),
        on_off(cfg.softmax_output),
        cast::f64_to_u64_sat((cfg.clock_mhz * 1000.0).round()),
        cfg.accumulator_bits,
    )
}

/// Errors parsing a macro header.
#[derive(Clone, PartialEq, Debug)]
pub enum MacroError {
    /// A required `` `define `` is missing.
    Missing(&'static str),
    /// A value failed to parse.
    BadValue(String),
    /// The resulting configuration failed validation.
    Invalid(ConfigError),
}

impl std::fmt::Display for MacroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MacroError::Missing(k) => write!(f, "missing `define {k}"),
            MacroError::BadValue(l) => write!(f, "unparseable define: {l}"),
            MacroError::Invalid(e) => write!(f, "invalid configuration: {e}"),
        }
    }
}

impl std::error::Error for MacroError {}

/// Parses a macro header back into an [`HwConfig`] (inverse of
/// [`to_verilog_macros`]; unknown defines are ignored, comments skipped).
pub fn from_verilog_macros(text: &str) -> Result<HwConfig, MacroError> {
    let mut values: HashMap<&str, u64> = HashMap::new();
    let mut flags: Vec<&str> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("`define ") else {
            continue;
        };
        match rest.split_once(' ') {
            Some((key, value)) => {
                let v = value
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| MacroError::BadValue(line.to_string()))?;
                values.insert(key, v);
            }
            None => flags.push(rest.trim()),
        }
    }
    let get = |k: &'static str| values.get(k).copied().ok_or(MacroError::Missing(k));
    let mul = |dsp: &str, lut: &str, name: &'static str| -> Result<MulImpl, MacroError> {
        if flags.contains(&dsp) {
            Ok(MulImpl::Dsp)
        } else if flags.contains(&lut) {
            Ok(MulImpl::Lut)
        } else {
            Err(MacroError::Missing(name))
        }
    };
    let cfg = HwConfig {
        lpus: cast::usize_sat(get("NETPU_LPU_NUM")?),
        tnpus_per_lpu: cast::usize_sat(get("NETPU_TNPU_PER_LPU")?),
        mul_lanes: cast::usize_sat(get("NETPU_MUL_LANES")?),
        max_multithreshold_bits: cast::u8_sat(get("NETPU_MAX_MT_BITS")?),
        bn_mul: mul("NETPU_BN_MUL_DSP", "NETPU_BN_MUL_LUT", "NETPU_BN_MUL_*")?,
        int_mul: mul("NETPU_INT_MUL_DSP", "NETPU_INT_MUL_LUT", "NETPU_INT_MUL_*")?,
        double_buffered_weights: get("NETPU_WEIGHT_DOUBLE_BUFFER")? != 0,
        dense_weight_packing: get("NETPU_DENSE_WEIGHT_PACKING")? != 0,
        softmax_output: get("NETPU_SOFTMAX_OUTPUT")? != 0,
        clock_mhz: cast::f64_from_u64(get("NETPU_CLOCK_KHZ")?) / 1000.0,
        // Headers generated before the width became configurable carry
        // no NETPU_ACC_BITS define; they were all 32-bit instances.
        accumulator_bits: cast::u8_sat(values.get("NETPU_ACC_BITS").copied().unwrap_or(32)),
    };
    cfg.validate().map_err(MacroError::Invalid)?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_renders_expected_defines() {
        let text = to_verilog_macros(&HwConfig::paper_instance());
        assert!(text.contains("`define NETPU_LPU_NUM 2"));
        assert!(text.contains("`define NETPU_TNPU_PER_LPU 8"));
        assert!(text.contains("`define NETPU_MAX_MT_BITS 4"));
        assert!(text.contains("`define NETPU_BN_MUL_DSP"));
        assert!(text.contains("`define NETPU_CLOCK_KHZ 100000"));
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let configs = [
            HwConfig::paper_instance(),
            HwConfig {
                lpus: 4,
                tnpus_per_lpu: 4,
                mul_lanes: 4,
                max_multithreshold_bits: 8,
                bn_mul: MulImpl::Lut,
                int_mul: MulImpl::Lut,
                double_buffered_weights: true,
                dense_weight_packing: true,
                softmax_output: true,
                clock_mhz: 150.0,
                accumulator_bits: 24,
            },
        ];
        for cfg in configs {
            let parsed = from_verilog_macros(&to_verilog_macros(&cfg)).unwrap();
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn parser_tolerates_comments_and_unknown_defines() {
        let text = format!(
            "// banner\n`define SOMETHING_ELSE 7\n{}",
            to_verilog_macros(&HwConfig::paper_instance())
        );
        assert_eq!(
            from_verilog_macros(&text).unwrap(),
            HwConfig::paper_instance()
        );
    }

    #[test]
    fn parser_rejects_incomplete_or_invalid_headers() {
        assert!(matches!(
            from_verilog_macros(""),
            Err(MacroError::Missing(_))
        ));
        let bad = to_verilog_macros(&HwConfig::paper_instance())
            .replace("`define NETPU_LPU_NUM 2", "`define NETPU_LPU_NUM 1");
        assert!(matches!(
            from_verilog_macros(&bad),
            Err(MacroError::Invalid(ConfigError::TooFewLpus(1)))
        ));
        let garbled = to_verilog_macros(&HwConfig::paper_instance())
            .replace("NETPU_MUL_LANES 8", "NETPU_MUL_LANES eight");
        assert!(matches!(
            from_verilog_macros(&garbled),
            Err(MacroError::BadValue(_))
        ));
    }
}
