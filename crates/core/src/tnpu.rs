//! The Transformable Neuron Processing Unit (§III.B.1, Fig. 3).
//!
//! A TNPU chains six submodules — MUL, ACCU, BN, ACTIV, QUAN, and the
//! Crossbar that routes data between them. The crossbar reconfigures the
//! datapath at runtime per layer kind, activation selector, and
//! BN-folding option, which is what makes the neuron "transformable":
//! the same hardware serves input-layer quantization (yellow path),
//! hidden-layer inference (red path), and output-layer scoring (pink
//! path) for both BNN and QNN models.

use netpu_arith::activation::{relu, sigmoid, tanh};
use netpu_arith::{cast, ActivationKind, Fix, Precision, QuantParams};
use netpu_compiler::LayerType;
use netpu_nn::qmodel::BnParams;
use serde::{Deserialize, Serialize};

/// A datapath stage the crossbar can route through.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Stage {
    /// The multiplier array (integer or XNOR lanes).
    Mul,
    /// The 32-bit saturating accumulator (+ optional 8-bit bias).
    Accu,
    /// The fixed-point batch-normalization unit.
    Bn,
    /// The activation unit.
    Activ,
    /// The re-quantization unit.
    Quan,
}

/// The crossbar's routing decision: the stage sequence for a layer
/// configuration. This is the executable form of Figure 3's five
/// coloured paths.
pub fn crossbar_route(
    layer_type: LayerType,
    activation: ActivationKind,
    bn_folded: bool,
) -> Vec<Stage> {
    match layer_type {
        // Yellow path: the dataset input bypasses MUL/ACCU/BN and goes
        // straight to ACTIV (Sign / Multi-Threshold) or ACTIV+QUAN.
        LayerType::Input => {
            if activation.bypasses_quan() {
                vec![Stage::Activ]
            } else {
                vec![Stage::Activ, Stage::Quan]
            }
        }
        // Red path: full pipeline, skipping BN when folded and QUAN when
        // the activation output is already quantized.
        LayerType::Hidden => {
            let mut route = vec![Stage::Mul, Stage::Accu];
            if !bn_folded {
                route.push(Stage::Bn);
            }
            route.push(Stage::Activ);
            if !activation.bypasses_quan() {
                route.push(Stage::Quan);
            }
            route
        }
        // Pink path: the output of ACCU (or BN) leaves the TNPU as the
        // neuron's score; ACTIV and QUAN are bypassed (MaxOut follows).
        LayerType::Output => {
            if bn_folded {
                vec![Stage::Mul, Stage::Accu]
            } else {
                vec![Stage::Mul, Stage::Accu, Stage::Bn]
            }
        }
    }
}

/// Per-neuron activation parameters loaded during Neuron Initialization.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub enum NeuronActivation {
    /// Sign with its folded threshold.
    Sign(Fix),
    /// Multi-Threshold with its sorted threshold row.
    MultiThreshold(Vec<Fix>),
    /// ReLU + QUAN parameters.
    Relu(QuantParams),
    /// Sigmoid + QUAN parameters.
    Sigmoid(QuantParams),
    /// Tanh + QUAN parameters.
    Tanh(QuantParams),
    /// Output-layer neurons have no activation (pink path).
    None,
}

impl NeuronActivation {
    /// The ACTIV selector this parameter set corresponds to.
    pub fn kind(&self) -> Option<ActivationKind> {
        match self {
            NeuronActivation::Sign(_) => Some(ActivationKind::Sign),
            NeuronActivation::MultiThreshold(_) => Some(ActivationKind::MultiThreshold),
            NeuronActivation::Relu(_) => Some(ActivationKind::Relu),
            NeuronActivation::Sigmoid(_) => Some(ActivationKind::Sigmoid),
            NeuronActivation::Tanh(_) => Some(ActivationKind::Tanh),
            NeuronActivation::None => None,
        }
    }
}

/// Everything one neuron needs loaded before processing.
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct NeuronParams {
    /// Folded 8-bit bias (exclusive with `bn`).
    pub bias: Option<i32>,
    /// Hardware BN parameters (exclusive with `bias`).
    pub bn: Option<BnParams>,
    /// Activation parameters.
    pub activation: NeuronActivation,
}

/// Static per-layer configuration a TNPU receives at Layer Initialization.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct LayerCfg {
    /// Layer kind (selects the crossbar path).
    pub layer_type: LayerType,
    /// Incoming-activation precision.
    pub in_precision: Precision,
    /// Weight precision.
    pub weight_precision: Precision,
    /// Outgoing-activation precision.
    pub out_precision: Precision,
}

impl LayerCfg {
    /// `true` when the MUL stage uses the XNOR lanes (both operands
    /// 1-bit — the §III.B.1 pairing rule).
    pub fn uses_xnor(&self) -> bool {
        self.in_precision.is_binary() && self.weight_precision.is_binary()
    }
}

/// The result leaving a TNPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TnpuOut {
    /// A quantized activation level (hidden/input layers). Sign levels
    /// are the 0/1 bit encoding.
    Level(i32),
    /// An output-layer score for MaxOut.
    Score(Fix),
}

/// The intermediate values the last [`Tnpu::finalize`] observed, exposed
/// for the datapath probe (the range-analysis soundness hook).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct NeuronTap {
    /// Post-bias accumulator value entering the post-MAC stages.
    pub acc: i32,
    /// Post-BN value, when the crossbar route includes the BN stage.
    pub post_bn: Option<Fix>,
}

/// One Transformable Neuron Processing Unit.
#[derive(Clone, Debug)]
pub struct Tnpu {
    lanes: usize,
    layer: Option<LayerCfg>,
    params: Option<NeuronParams>,
    acc: i32,
    tap: NeuronTap,
    /// MAC operations performed since configuration (statistics).
    pub mac_ops: u64,
}

impl Tnpu {
    /// Creates a TNPU with `lanes` parallel 8-bit multiplier lanes.
    pub fn new(lanes: usize) -> Tnpu {
        assert!((1..=8).contains(&lanes), "1..=8 multiplier lanes");
        Tnpu {
            lanes,
            layer: None,
            params: None,
            acc: 0,
            tap: NeuronTap::default(),
            mac_ops: 0,
        }
    }

    /// Number of multiplier lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Input levels consumed per weight word: 8 lanes × 8 channels on
    /// the XNOR path, `lanes` on the integer path.
    pub fn levels_per_word(&self, layer: &LayerCfg) -> usize {
        if layer.uses_xnor() {
            self.lanes * 8
        } else {
            self.lanes
        }
    }

    /// Layer Initialization: latch the layer configuration.
    pub fn configure_layer(&mut self, layer: LayerCfg) {
        self.layer = Some(layer);
        self.params = None;
        self.acc = 0;
    }

    /// Neuron Initialization: latch one neuron's parameters and clear
    /// the accumulator.
    pub fn load_neuron(&mut self, params: NeuronParams) {
        assert!(self.layer.is_some(), "configure_layer first");
        self.acc = 0;
        self.params = Some(params);
    }

    /// The MUL+ACCU stages for one weight word against the matching
    /// input chunk (levels in MAC domain: ±1 for binary, unsigned
    /// otherwise). `inputs` holds at most [`Tnpu::levels_per_word`]
    /// entries; shorter chunks model a layer tail.
    pub fn mac_word(&mut self, inputs: &[i32], weight_word: u64) {
        let Some(layer) = self.layer else {
            panic!("configure_layer before mac_word")
        };
        debug_assert!(inputs.len() <= self.levels_per_word(&layer));
        let mut sum: i64 = 0;
        if layer.uses_xnor() {
            // Eight 8-bit XNOR multipliers + popcount (Table I).
            let mut bits = 0u64;
            for (i, &v) in inputs.iter().enumerate() {
                bits |= u64::from(netpu_arith::binary::encode_bipolar(v)) << i;
            }
            let n = cast::u32_sat_usize(inputs.len());
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            let ones = (!(bits ^ weight_word) & mask).count_ones();
            sum = 2 * i64::from(ones) - i64::from(n);
        } else {
            for (i, &a) in inputs.iter().enumerate() {
                let byte = cast::lo8(weight_word >> (8 * i));
                let w = if layer.weight_precision.is_binary() {
                    // ±1 weights promoted onto the integer path travel
                    // sign-extended (the placeholder-lane encoding).
                    cast::sign_extend(u32::from(byte), 8)
                } else {
                    let bits = u32::from(layer.weight_precision.bits());
                    let masked = u32::from(byte) & ((1 << bits) - 1);
                    cast::sign_extend(masked, bits)
                };
                sum += i64::from(w) * i64::from(a);
            }
        }
        self.acc = cast::i32_sat(i64::from(self.acc) + sum);
        self.mac_ops += cast::u64_from_usize(inputs.len());
    }

    /// [`Tnpu::mac_word`] for the XNOR path with the input bits already
    /// packed (bit `i` = `encode_bipolar(inputs[i])`). The LPU fast path
    /// packs a layer's input levels once and then feeds every weight
    /// word of every neuron through this single XOR+popcount, which is
    /// arithmetically identical to the per-lane loop above: both reduce
    /// to `2·popcount(XNOR(bits, weights) & mask) − n`.
    pub fn mac_word_prepacked(&mut self, input_bits: u64, n: u32, weight_word: u64) {
        debug_assert!(self.layer.is_some_and(|l| l.uses_xnor()));
        debug_assert!(self
            .layer
            .is_some_and(|l| cast::usize_from_u32(n) <= self.levels_per_word(&l)));
        let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let ones = (!(input_bits ^ weight_word) & mask).count_ones();
        let sum = 2 * i64::from(ones) - i64::from(n);
        self.acc = cast::i32_sat(i64::from(self.acc) + sum);
        self.mac_ops += u64::from(n);
    }

    /// The MUL+ACCU stages for pre-extracted integer-path operands (the
    /// LPU extracts weight fields word-by-word; dense packing can carry
    /// more weights per word than lanes, so extraction lives upstream).
    pub fn mac_values(&mut self, inputs: &[i32], weights: &[i32]) {
        debug_assert_eq!(inputs.len(), weights.len());
        debug_assert!(inputs.len() <= self.lanes);
        let mut sum: i64 = 0;
        for (&a, &w) in inputs.iter().zip(weights) {
            sum += i64::from(w) * i64::from(a);
        }
        self.acc = cast::i32_sat(i64::from(self.acc) + sum);
        self.mac_ops += cast::u64_from_usize(inputs.len());
    }

    /// Current accumulator value (observability for tests).
    pub fn acc(&self) -> i32 {
        self.acc
    }

    /// The intermediate values the last [`Tnpu::finalize`] observed.
    pub fn tap(&self) -> NeuronTap {
        self.tap
    }

    /// Routes a value through the post-MAC stages of the crossbar path,
    /// also returning the post-BN intermediate when the route has a BN
    /// stage (for the [`NeuronTap`]).
    fn post_stages(&self, route: &[Stage], start: Fix) -> (TnpuOut, Option<Fix>) {
        let Some(params) = self.params.as_ref() else {
            panic!("load_neuron before post stages")
        };
        let Some(layer) = self.layer else {
            panic!("configure_layer before post stages")
        };
        let mut x = start;
        let mut level: Option<i32> = None;
        let mut post_bn: Option<Fix> = None;
        for stage in route {
            match stage {
                Stage::Mul | Stage::Accu => {}
                Stage::Bn => {
                    let Some(bn) = params.bn.as_ref() else {
                        panic!("BN stage needs parameters")
                    };
                    x = bn.apply(x);
                    post_bn = Some(x);
                }
                Stage::Activ => match &params.activation {
                    NeuronActivation::Sign(t) => {
                        level = Some(i32::from(x >= *t));
                    }
                    NeuronActivation::MultiThreshold(ts) => {
                        level = Some(cast::i32_sat_usize(ts.partition_point(|&t| t <= x)));
                    }
                    NeuronActivation::Relu(_) => x = relu(x),
                    NeuronActivation::Sigmoid(_) => x = sigmoid(x),
                    NeuronActivation::Tanh(_) => x = tanh(x),
                    NeuronActivation::None => unreachable!("pink path has no ACTIV"),
                },
                Stage::Quan => {
                    let q = match &params.activation {
                        NeuronActivation::Relu(q)
                        | NeuronActivation::Sigmoid(q)
                        | NeuronActivation::Tanh(q) => q,
                        _ => unreachable!("QUAN only follows the full-precision activations"),
                    };
                    level = Some(q.apply(x, layer.out_precision));
                }
            }
        }
        let out = match level {
            Some(l) => TnpuOut::Level(l),
            None => TnpuOut::Score(x),
        };
        (out, post_bn)
    }

    /// Finishes a hidden/output neuron: applies bias, then the post-MAC
    /// crossbar path, returning the level or score.
    pub fn finalize(&mut self) -> TnpuOut {
        let Some(layer) = self.layer else {
            panic!("configure_layer before finalize")
        };
        let Some(params) = self.params.as_ref() else {
            panic!("load_neuron before finalize")
        };
        debug_assert_ne!(layer.layer_type, LayerType::Input);
        let mut acc = self.acc;
        if let Some(b) = params.bias {
            acc = cast::i32_sat(i64::from(acc) + i64::from(b));
        }
        let act_kind = params.activation.kind().unwrap_or(ActivationKind::Relu);
        let route = crossbar_route(layer.layer_type, act_kind, params.bias.is_some());
        let (out, post_bn) = self.post_stages(&route, Fix::from_i32(acc));
        self.tap = NeuronTap { acc, post_bn };
        self.acc = 0;
        out
    }

    /// Processes one input-layer value through the yellow path.
    pub fn process_input(&mut self, raw: i32) -> i32 {
        let Some(layer) = self.layer else {
            panic!("configure_layer before process_input")
        };
        debug_assert_eq!(layer.layer_type, LayerType::Input);
        let Some(params) = self.params.as_ref() else {
            panic!("load_neuron before process_input")
        };
        let Some(kind) = params.activation.kind() else {
            panic!("input layer has no activation parameters")
        };
        let route = crossbar_route(LayerType::Input, kind, true);
        match self.post_stages(&route, Fix::from_i32(raw)).0 {
            TnpuOut::Level(l) => l,
            TnpuOut::Score(_) => unreachable!("yellow path always quantizes"),
        }
    }
}

/// The MaxOut classifier attached to the output layer: tracks the
/// running maximum score, keeping the lowest index on ties.
#[derive(Clone, Debug, Default)]
pub struct MaxOut {
    best: Option<(usize, Fix)>,
}

impl MaxOut {
    /// Resets for a new inference.
    pub fn reset(&mut self) {
        self.best = None;
    }

    /// Feeds one output neuron's score.
    pub fn push(&mut self, index: usize, score: Fix) {
        if self.best.is_none_or(|(_, s)| score > s) {
            self.best = Some((index, score));
        }
    }

    /// The winning class, if any score was pushed.
    pub fn result(&self) -> Option<usize> {
        self.best.map(|(i, _)| i)
    }

    /// The winning score, if any.
    pub fn best_score(&self) -> Option<Fix> {
        self.best.map(|(_, s)| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hidden_cfg(ip: Precision, wp: Precision, op: Precision) -> LayerCfg {
        LayerCfg {
            layer_type: LayerType::Hidden,
            in_precision: ip,
            weight_precision: wp,
            out_precision: op,
        }
    }

    /// Fig. 3 path 1: input layer of a BNN routes input → ACTIV only.
    #[test]
    fn route_input_bnn() {
        assert_eq!(
            crossbar_route(LayerType::Input, ActivationKind::Sign, true),
            vec![Stage::Activ]
        );
        assert_eq!(
            crossbar_route(LayerType::Input, ActivationKind::MultiThreshold, true),
            vec![Stage::Activ]
        );
    }

    /// Fig. 3 path 2: input layer on the QUAN path routes ACTIV → QUAN.
    #[test]
    fn route_input_qnn() {
        assert_eq!(
            crossbar_route(LayerType::Input, ActivationKind::Relu, true),
            vec![Stage::Activ, Stage::Quan]
        );
    }

    /// Fig. 3 path 3: hidden BNN layer with folded BN skips BN and QUAN.
    #[test]
    fn route_hidden_bnn_folded() {
        assert_eq!(
            crossbar_route(LayerType::Hidden, ActivationKind::Sign, true),
            vec![Stage::Mul, Stage::Accu, Stage::Activ]
        );
    }

    /// Fig. 3 path 4: hidden QNN layer with hardware BN and sigmoid runs
    /// the full pipeline.
    #[test]
    fn route_hidden_full_pipeline() {
        assert_eq!(
            crossbar_route(LayerType::Hidden, ActivationKind::Sigmoid, false),
            vec![
                Stage::Mul,
                Stage::Accu,
                Stage::Bn,
                Stage::Activ,
                Stage::Quan
            ]
        );
        // Multi-threshold bypasses QUAN even with hardware BN.
        assert_eq!(
            crossbar_route(LayerType::Hidden, ActivationKind::MultiThreshold, false),
            vec![Stage::Mul, Stage::Accu, Stage::Bn, Stage::Activ]
        );
    }

    /// Fig. 3 path 5: output layer stops after ACCU (or BN).
    #[test]
    fn route_output() {
        assert_eq!(
            crossbar_route(LayerType::Output, ActivationKind::Relu, true),
            vec![Stage::Mul, Stage::Accu]
        );
        assert_eq!(
            crossbar_route(LayerType::Output, ActivationKind::Relu, false),
            vec![Stage::Mul, Stage::Accu, Stage::Bn]
        );
    }

    #[test]
    fn xnor_mac_matches_integer_reference() {
        let cfg = hidden_cfg(Precision::W1, Precision::W1, Precision::W1);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(0),
            bn: None,
            activation: NeuronActivation::Sign(Fix::ZERO),
        });
        // 64 channels per word on the XNOR path.
        assert_eq!(t.levels_per_word(&cfg), 64);
        let inputs: Vec<i32> = (0..64).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
        let weights: Vec<i32> = (0..64).map(|i| if i % 5 == 0 { -1 } else { 1 }).collect();
        let word = netpu_arith::quant::pack_binary_channels(&weights)[0];
        t.mac_word(&inputs, word);
        let expect: i32 = inputs.iter().zip(&weights).map(|(&a, &w)| a * w).sum();
        assert_eq!(t.acc(), expect);
    }

    #[test]
    fn integer_mac_extracts_lanes_with_placeholders() {
        let cfg = hidden_cfg(Precision::W2, Precision::W2, Precision::W2);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(0),
            bn: None,
            activation: NeuronActivation::MultiThreshold(vec![
                Fix::ZERO,
                Fix::ONE,
                Fix::from_i32(2),
            ]),
        });
        // Weights -2,-1,0,1 in the low lanes; garbage placeholder bits
        // must be masked by the 2-bit extraction.
        let weights = [-2i32, -1, 0, 1];
        let mut word = 0u64;
        for (i, &w) in weights.iter().enumerate() {
            word |= u64::from((w as i8 as u8) | 0b1111_0100 & 0xF0) << (8 * i);
        }
        let inputs = [3, 2, 1, 0];
        t.mac_word(&inputs[..], word);
        // -2·3 + -1·2 + 0·1 + 1·0 = -8.
        assert_eq!(t.acc(), -8);
    }

    #[test]
    fn binary_weights_on_integer_path_sign_extend() {
        let cfg = hidden_cfg(Precision::W2, Precision::W1, Precision::W2);
        assert!(!cfg.uses_xnor());
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(0),
            bn: None,
            activation: NeuronActivation::MultiThreshold(vec![
                Fix::ZERO,
                Fix::ONE,
                Fix::from_i32(2),
            ]),
        });
        let word = u64::from(1u8) | (u64::from(-1i8 as u8) << 8);
        t.mac_word(&[2, 3], word);
        assert_eq!(t.acc(), 2 - 3);
    }

    #[test]
    fn finalize_sign_neuron_with_bias() {
        let cfg = hidden_cfg(Precision::W2, Precision::W2, Precision::W1);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(5),
            bn: None,
            activation: NeuronActivation::Sign(Fix::from_i32(4)),
        });
        // acc = 0, bias 5 ≥ threshold 4 → bit 1.
        assert_eq!(t.finalize(), TnpuOut::Level(1));
        t.load_neuron(NeuronParams {
            bias: Some(3),
            bn: None,
            activation: NeuronActivation::Sign(Fix::from_i32(4)),
        });
        assert_eq!(t.finalize(), TnpuOut::Level(0));
    }

    #[test]
    fn finalize_hardware_bn_multithreshold() {
        let cfg = hidden_cfg(Precision::W2, Precision::W2, Precision::W2);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: None,
            bn: Some(BnParams {
                scale_q16: Fix::q16_scale_from_f64(0.5),
                offset: Fix::from_f64(1.0),
            }),
            activation: NeuronActivation::MultiThreshold(vec![
                Fix::from_f64(0.0),
                Fix::from_f64(2.0),
                Fix::from_f64(4.0),
            ]),
        });
        t.mac_word(&[2, 2], u64::from(1u8) | (1 << 8)); // acc = 4
                                                        // BN: 4·0.5 + 1 = 3 → thresholds {0,2,4} → level 2.
        assert_eq!(t.finalize(), TnpuOut::Level(2));
    }

    #[test]
    fn output_neuron_returns_score() {
        let cfg = LayerCfg {
            layer_type: LayerType::Output,
            in_precision: Precision::W2,
            weight_precision: Precision::W2,
            out_precision: Precision::W8,
        };
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(-3),
            bn: None,
            activation: NeuronActivation::None,
        });
        t.mac_word(&[1, 1], u64::from(1u8) | (1 << 8)); // acc = 2
        assert_eq!(t.finalize(), TnpuOut::Score(Fix::from_i32(-1)));
    }

    #[test]
    fn input_layer_quantizes_pixels() {
        let cfg = LayerCfg {
            layer_type: LayerType::Input,
            in_precision: Precision::W8,
            weight_precision: Precision::W1,
            out_precision: Precision::W2,
        };
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: None,
            bn: None,
            activation: NeuronActivation::MultiThreshold(vec![
                Fix::from_i32(32),
                Fix::from_i32(96),
                Fix::from_i32(160),
            ]),
        });
        assert_eq!(t.process_input(10), 0);
        assert_eq!(t.process_input(100), 2);
        assert_eq!(t.process_input(250), 3);
    }

    #[test]
    fn finalize_resets_accumulator() {
        let cfg = hidden_cfg(Precision::W2, Precision::W2, Precision::W1);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(0),
            bn: None,
            activation: NeuronActivation::Sign(Fix::ZERO),
        });
        t.mac_word(&[3], u64::from(1u8));
        assert_eq!(t.acc(), 3);
        t.finalize();
        assert_eq!(t.acc(), 0);
    }

    #[test]
    fn maxout_keeps_first_on_tie() {
        let mut m = MaxOut::default();
        assert_eq!(m.result(), None);
        m.push(0, Fix::from_i32(5));
        m.push(1, Fix::from_i32(9));
        m.push(2, Fix::from_i32(9));
        m.push(3, Fix::from_i32(-2));
        assert_eq!(m.result(), Some(1));
        assert_eq!(m.best_score(), Some(Fix::from_i32(9)));
        m.reset();
        assert_eq!(m.result(), None);
    }

    #[test]
    fn mac_ops_counted() {
        let cfg = hidden_cfg(Precision::W2, Precision::W2, Precision::W1);
        let mut t = Tnpu::new(8);
        t.configure_layer(cfg);
        t.load_neuron(NeuronParams {
            bias: Some(0),
            bn: None,
            activation: NeuronActivation::Sign(Fix::ZERO),
        });
        t.mac_word(&[1, 2, 3], 0);
        t.mac_word(&[1], 0);
        assert_eq!(t.mac_ops, 4);
    }
}
