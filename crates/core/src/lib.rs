#![deny(missing_docs)]
//! The NetPU-M accelerator core: a cycle-level behavioral model of the
//! paper's three-stage architecture.
//!
//! * [`config`] — synthesis-time structural parameters.
//! * [`genconfig`] — the paper's Verilog-macro configuration generator
//!   (renders/parses the `` `define `` header the generation blocks use).
//! * [`tnpu`] — the Transformable Neuron Processing Unit datapath and
//!   its crossbar (Fig. 3).
//! * [`lpu`] — the Layer Processing Unit: buffer cluster (Table III)
//!   and the Layer/Neuron Initialization + Neuron Processing workflow
//!   (Fig. 4).
//! * [`netpu`] — the top Network Processing Unit: recycling LPU ring,
//!   stream-driven control (§III.B.3), MaxOut output.
//! * [`batch`] — the batch fast path: cycle counts from one
//!   phase-skipping run, values from the batch-major bitsliced kernel.
//! * [`resources`] — the compositional FPGA resource model calibrated
//!   against Tables IV and V.
//!
//! The model is *bit-exact* against `netpu_nn::reference` (tested in the
//! workspace integration suite) and *cycle-accounted* per the latency
//! model documented in `DESIGN.md` §4.

pub mod batch;
pub mod config;
pub mod genconfig;
pub mod lpu;
pub mod netpu;
pub mod resources;
pub mod tnpu;

pub use batch::{run_batch_fast, BatchEngine, SlabBreakdown, SLAB_WIDTH};
pub use config::{ConfigError, HwConfig, MulImpl};
pub use netpu::{
    run_inference, run_inference_fast, run_inference_observed, InferenceRun, NetPu, NetPuError,
};
