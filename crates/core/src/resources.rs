//! Compositional FPGA resource model.
//!
//! Vivado synthesis is not available from Rust, so resource utilization
//! is reproduced compositionally: per-primitive costs (derived from the
//! deltas between the four Table IV TNPU instances) composed over the
//! same module structure the Verilog generator would emit. The model
//! reproduces Table IV per instance and Table V for the full NetPU-M,
//! and — more importantly — the *scaling shape*: Multi-Threshold LUT
//! cost exploding from 4-bit to 8-bit support, and the DSP↔LUT trade of
//! the BN multiplier mode.
//!
//! Calibration anchors (Ultra96-V2, Table IV):
//! * TNPU, max-MT 4 bit, DSP BN-mul: 2,705 LUTs / 16 DSPs / 32 FFs.
//! * TNPU, max-MT 8 bit, DSP BN-mul: 19,049 LUTs (+240 comparators).
//! * LUT BN-mul: +1,089 LUTs, −4 DSPs.

use crate::config::{HwConfig, MulImpl};
use crate::lpu::Lpu;
use netpu_arith::cast;

pub use netpu_sim::fpga::{Platform, Utilization, UtilizationRates, ULTRA96_V2, ZYNQ7000_ZC706};

// --- Primitive costs (calibration constants; see module docs). ---

/// LUTs per 8-bit XNOR multiplier + popcount lane.
const LUT_XNOR_LANE: u64 = 15;
/// LUTs per 32-bit threshold comparator: (19,049 − 2,705) / 240.
const LUT_THRESHOLD_CMP: u64 = 68;
/// LUTs of a LUT-fabric 32-bit BN multiplier (Table IV DSP→LUT delta).
const LUT_BN_MUL: u64 = 1_089;
/// DSPs of a DSP-mapped 32-bit BN multiplier (16 − 12).
const DSP_BN_MUL: u64 = 4;
/// DSPs of a DSP-mapped 32-bit QUAN multiplier.
const DSP_QUAN_MUL: u64 = 4;
/// DSPs per 8×8 integer multiplier lane.
const DSP_INT_MUL: u64 = 1;
/// LUTs per LUT-fabric 8×8 integer multiplier lane.
const LUT_INT_MUL: u64 = 60;
/// LUTs of the accumulator, PWL sigmoid, crossbar, and TNPU control —
/// the Table IV 4-bit/DSP instance minus its 15 comparators and 8 XNOR
/// lanes: 2,705 − 15·68 − 8·15 = 1,565.
const LUT_TNPU_BASE: u64 = 1_565;
/// FFs per TNPU (Table IV reports 32 for every instance).
const FF_TNPU: u64 = 32;
/// LUTs of one LPU's layer-control FSM and TNPU muxing.
const LUT_LPU_BASE: u64 = 5_000;
/// Additional LPU muxing LUTs per attached TNPU.
const LUT_LPU_PER_TNPU: u64 = 250;
/// FFs of one LPU (stream registers, counters, buffer pointers).
const FF_LPU: u64 = 6_500;
/// LUTs of the top NetPU control + Output Multiplexer.
const LUT_NETPU_BASE: u64 = 2_400;
/// FFs of the top NetPU control.
const FF_NETPU: u64 = 1_000;
/// BRAM36 of the NetPU FIFO cluster (Network Input/Output, Layer
/// Setting, staging).
const BRAM_NETPU_FIFOS: f64 = 17.5;

/// Resource cost of a single TNPU under a configuration.
pub fn tnpu_utilization(cfg: &HwConfig) -> Utilization {
    let lanes = cast::u64_from_usize(cfg.mul_lanes);
    let mt_thresholds = (1u64 << cfg.max_multithreshold_bits) - 1;
    let mut luts = LUT_TNPU_BASE + lanes * LUT_XNOR_LANE + mt_thresholds * LUT_THRESHOLD_CMP;
    let mut dsps = DSP_QUAN_MUL;
    match cfg.int_mul {
        MulImpl::Dsp => dsps += lanes * DSP_INT_MUL,
        MulImpl::Lut => luts += lanes * LUT_INT_MUL,
    }
    match cfg.bn_mul {
        MulImpl::Dsp => dsps += DSP_BN_MUL,
        MulImpl::Lut => luts += LUT_BN_MUL,
    }
    Utilization {
        luts,
        dsps,
        ffs: FF_TNPU,
        bram36: 0.0,
    }
}

/// Resource cost of one LPU (TNPU cluster + buffer cluster + control).
pub fn lpu_utilization(cfg: &HwConfig) -> Utilization {
    let tnpus = tnpu_utilization(cfg).times(cast::u64_from_usize(cfg.tnpus_per_lpu));
    let control = Utilization {
        luts: LUT_LPU_BASE + LUT_LPU_PER_TNPU * cast::u64_from_usize(cfg.tnpus_per_lpu),
        dsps: 0,
        ffs: FF_LPU,
        bram36: Lpu::buffer_bram36(),
    };
    tnpus + control
}

/// Resource cost of the full NetPU-M instance.
pub fn netpu_utilization(cfg: &HwConfig) -> Utilization {
    let lpus = lpu_utilization(cfg).times(cast::u64_from_usize(cfg.lpus));
    let top = Utilization {
        luts: LUT_NETPU_BASE,
        dsps: 0,
        ffs: FF_NETPU,
        bram36: BRAM_NETPU_FIFOS,
    };
    lpus + top
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_mt: u8, bn: MulImpl) -> HwConfig {
        HwConfig {
            max_multithreshold_bits: max_mt,
            bn_mul: bn,
            ..HwConfig::paper_instance()
        }
    }

    /// Table IV row 3: 4-bit MT cap, DSP BN-mul.
    #[test]
    fn tnpu_matches_table4_small_dsp() {
        let u = tnpu_utilization(&cfg(4, MulImpl::Dsp));
        assert_eq!(u.luts, 2_705);
        assert_eq!(u.dsps, 16);
        assert_eq!(u.ffs, 32);
    }

    /// Table IV row 4: 4-bit MT cap, LUT BN-mul.
    #[test]
    fn tnpu_matches_table4_small_lut() {
        let u = tnpu_utilization(&cfg(4, MulImpl::Lut));
        assert_eq!(u.luts, 3_794);
        assert_eq!(u.dsps, 12);
    }

    /// Table IV rows 1–2: 8-bit MT cap.
    #[test]
    fn tnpu_matches_table4_large() {
        let dsp = tnpu_utilization(&cfg(8, MulImpl::Dsp));
        // Paper: 19,049. Model: 2,705 + 240·68 = 19,025 (≤0.2% off; the
        // comparator cost is the rounded Table IV delta).
        assert!(
            (dsp.luts as i64 - 19_049).unsigned_abs() < 60,
            "{}",
            dsp.luts
        );
        let lut = tnpu_utilization(&cfg(8, MulImpl::Lut));
        assert_eq!(lut.luts, dsp.luts + 1_089);
        assert_eq!(lut.dsps, dsp.dsps - 4);
    }

    /// Table IV's headline: 8-bit Multi-Threshold support costs >27% of
    /// the Ultra96's LUTs for a single TNPU; 4-bit costs <6%.
    #[test]
    fn multithreshold_scaling_shape() {
        let small = tnpu_utilization(&cfg(4, MulImpl::Dsp)).rates(&ULTRA96_V2);
        let large = tnpu_utilization(&cfg(8, MulImpl::Dsp)).rates(&ULTRA96_V2);
        assert!(small.luts < 0.06, "{}", small.luts);
        assert!(large.luts > 0.25, "{}", large.luts);
    }

    /// Table V: the 2×8 instance's DSP count is exactly 256 (71.11%).
    #[test]
    fn netpu_matches_table5_dsps() {
        let u = netpu_utilization(&HwConfig::paper_instance());
        assert_eq!(u.dsps, 256);
        let r = u.rates(&ULTRA96_V2);
        assert!((r.dsps - 0.7111).abs() < 0.001);
    }

    /// Table V: LUTs 59,755 (84.69%), FFs 14,601 (10.35%), BRAM 129.5
    /// (59.95%). The composed model lands within a few percent.
    #[test]
    fn netpu_matches_table5_totals() {
        let u = netpu_utilization(&HwConfig::paper_instance());
        let lut_err = (u.luts as f64 - 59_755.0).abs() / 59_755.0;
        assert!(lut_err < 0.05, "LUTs {} vs 59,755", u.luts);
        let ff_err = (u.ffs as f64 - 14_601.0).abs() / 14_601.0;
        assert!(ff_err < 0.05, "FFs {} vs 14,601", u.ffs);
        assert!((u.bram36 - 129.5).abs() < 1.0, "BRAM {} vs 129.5", u.bram36);
        assert!(u.fits(&ULTRA96_V2));
    }

    #[test]
    fn bigger_instances_eventually_overflow_the_platform() {
        let big = HwConfig {
            lpus: 4,
            tnpus_per_lpu: 16,
            ..HwConfig::paper_instance()
        };
        let u = netpu_utilization(&big);
        assert!(!u.fits(&ULTRA96_V2));
        let r = u.rates(&ULTRA96_V2);
        assert!(r.dsps > 1.0 || r.luts > 1.0);
    }

    #[test]
    fn utilization_arithmetic() {
        let a = Utilization {
            luts: 10,
            dsps: 2,
            ffs: 5,
            bram36: 1.5,
        };
        let b = a.times(3);
        assert_eq!(b.luts, 30);
        assert_eq!((a + b).dsps, 8);
        assert_eq!((a + b).bram36, 6.0);
    }
}
