//! The batch fast path: cycle **counts** from the phase-skipping
//! simulation, **values** from the batch-major bitsliced kernel.
//!
//! The accelerator's latency is input-independent for a fixed model
//! (enforced by the workspace property suite), so a batch needs the
//! cycle model exactly once: one [`run_inference_fast`] run supplies
//! the cycle count, latency, and [`NetPuStats`](crate::netpu::NetPuStats)
//! breakdown for every frame — keeping the differential cycle-exactness
//! suite the oracle for timing. The numeric results per frame then come
//! from the cheapest bit-exact kernel available:
//!
//! * fully binary models ride [`BitslicedMlp`] — 64 images per `u64`
//!   lane, one XNOR + vertical popcount per weight bit for the whole
//!   slab ([`netpu_arith::bitslice`]);
//! * anything else falls back to the per-frame [`PackedMlp`] walk.
//!
//! Both kernels are bit-identical to the cycle-level datapath, so a
//! [`run_batch_fast`] result is indistinguishable from running
//! [`run_inference_fast`] once per frame — at a fraction of the cost.

use crate::config::HwConfig;
use crate::netpu::{run_inference_fast, InferenceRun, NetPuError};
use netpu_compiler::StreamError;
use netpu_nn::reference::{BitslicedMlp, PackedMlp, SlabOutput};
use netpu_nn::QuantMlp;

/// Frames per bitsliced slab (one `u64` lane of images).
pub const SLAB_WIDTH: usize = netpu_arith::bitslice::LANE_WIDTH;

/// How a batch decomposed across the two value kernels: full
/// [`SLAB_WIDTH`]-image slabs swept through the bitsliced kernel, and
/// frames that took the per-frame packed walk instead (the sub-slab
/// tail of a bitsliced batch, or *every* frame of a model the bitsliced
/// kernel does not admit). Serving-layer occupancy metrics consume this
/// so the fallback path is counted the same way wherever it runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabBreakdown {
    /// Full 64-image slabs that actually ran on the bitsliced kernel.
    pub slabs_full: usize,
    /// Frames that ran on the per-frame packed fallback walk.
    pub fallback_frames: usize,
}

impl SlabBreakdown {
    /// The fallback frames expressed in slab-equivalents
    /// (`ceil(fallback_frames / SLAB_WIDTH)`): how many under-occupied
    /// slab sweeps the same frames *would* have cost the bitsliced
    /// kernel. This is the unit the serving layer's
    /// `slabs_partial` counter accumulates, so a 3-frame bitsliced
    /// tail and a 3-frame fallback-only batch count identically.
    pub fn partial_slab_equivalents(&self) -> usize {
        self.fallback_frames.div_ceil(SLAB_WIDTH)
    }
}

/// A model prepared for repeated batch-value computation: the
/// bitsliced kernel when the model is fully binary, the packed
/// per-frame walk otherwise. This is the *values* half of the
/// counts-vs-values split; timing lives with the caller's one
/// cycle-model run.
pub struct BatchEngine<'m> {
    sliced: Option<BitslicedMlp<'m>>,
    packed: PackedMlp<'m>,
}

impl<'m> BatchEngine<'m> {
    /// Prepares `model`'s kernels once for a whole batch.
    pub fn new(model: &'m QuantMlp) -> BatchEngine<'m> {
        BatchEngine {
            sliced: BitslicedMlp::new(model),
            packed: PackedMlp::new(model),
        }
    }

    /// `true` when the batch-major bitsliced kernel is active (the
    /// model is fully binary).
    pub fn is_bitsliced(&self) -> bool {
        self.sliced.is_some()
    }

    /// The chunk width a batch sweep should use: full 64-image slabs
    /// on the bitsliced kernel; single frames on the per-frame
    /// fallback, where larger chunks would only serialize work that
    /// parallelizes per frame.
    pub fn chunk_width(&self) -> usize {
        if self.sliced.is_some() {
            SLAB_WIDTH
        } else {
            1
        }
    }

    /// How a batch of `frames` frames decomposes across the kernels
    /// this engine selected: on the bitsliced kernel, full slabs plus a
    /// sub-slab fallback tail; on a fallback-only model, zero slabs and
    /// every frame on the per-frame walk.
    pub fn slab_breakdown(&self, frames: usize) -> SlabBreakdown {
        if self.sliced.is_some() {
            SlabBreakdown {
                slabs_full: frames / SLAB_WIDTH,
                fallback_frames: frames % SLAB_WIDTH,
            }
        } else {
            SlabBreakdown {
                slabs_full: 0,
                fallback_frames: frames,
            }
        }
    }

    /// Computes the per-frame values (class + scores) for `frames`,
    /// in order. Any number of frames: the bitsliced kernel consumes
    /// **full** [`SLAB_WIDTH`]-image slabs, and the sub-slab remainder
    /// falls back to the per-frame packed walk — a short slab would
    /// still pay the whole 64-lane compressor sweep, so per-frame
    /// popcounts are the cheaper bit-exact kernel for the tail.
    pub fn run_slab(&self, frames: &[Vec<u8>]) -> Vec<SlabOutput> {
        let per_frame = |px: &Vec<u8>| {
            let t = self.packed.infer_traced(px);
            SlabOutput {
                class: t.class,
                scores: t.scores,
            }
        };
        match &self.sliced {
            Some(sliced) => {
                let full = frames.len() - frames.len() % SLAB_WIDTH;
                let mut out = Vec::with_capacity(frames.len());
                for slab in frames[..full].chunks(SLAB_WIDTH) {
                    out.extend(sliced.infer_slab(slab));
                }
                out.extend(frames[full..].iter().map(per_frame));
                out
            }
            None => frames.iter().map(per_frame).collect(),
        }
    }
}

/// Runs a whole batch on the counts-vs-values split: compiles the
/// first frame, runs the phase-skipping cycle model **once**, then
/// derives every frame's [`InferenceRun`] from the batch kernel's
/// values plus the memoized timing. Bit-identical to calling
/// [`run_inference_fast`] on every frame individually.
pub fn run_batch_fast(
    cfg: &HwConfig,
    model: &QuantMlp,
    inputs: &[Vec<u8>],
) -> Result<Vec<InferenceRun>, NetPuError> {
    let Some(first) = inputs.first() else {
        return Ok(Vec::new());
    };
    let expected = model.input.len;
    for px in inputs {
        if px.len() != expected {
            return Err(NetPuError::Stream(StreamError::InputLength {
                expected,
                got: px.len(),
            }));
        }
    }
    let loadable = netpu_compiler::compile(model, first).map_err(NetPuError::Stream)?;
    let template = run_inference_fast(cfg, loadable.words)?;
    let engine = BatchEngine::new(model);
    let outputs = engine.run_slab(inputs);
    debug_assert_eq!(outputs.first().map(|o| o.class), Some(template.class));
    Ok(outputs
        .into_iter()
        .map(|out| {
            let score = out.scores.get(out.class).copied().unwrap_or_default();
            InferenceRun {
                class: out.class,
                score,
                cycles: template.cycles,
                latency_us: template.latency_us,
                probabilities: cfg
                    .softmax_output
                    .then(|| netpu_arith::softmax::softmax(&out.scores)),
                stats: template.stats.clone(),
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;

    fn frames(len: usize, n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|f| {
                (0..len)
                    .map(|i| ((i * 29 + f * 13 + 7) % 256) as u8)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn batch_fast_matches_per_frame_fast_path_binary() {
        // 67 frames: a full slab plus a 3-frame tail.
        let cfg = HwConfig::paper_instance();
        let model = ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap();
        let inputs = frames(model.input.len, 67);
        let batch = run_batch_fast(&cfg, &model, &inputs).unwrap();
        assert_eq!(batch.len(), 67);
        assert!(BatchEngine::new(&model).is_bitsliced());
        for (run, px) in batch.iter().zip(&inputs).step_by(13) {
            let words = netpu_compiler::compile(&model, px).unwrap().words;
            let single = run_inference_fast(&cfg, words).unwrap();
            assert_eq!(run, &single);
        }
    }

    #[test]
    fn slab_breakdown_counts_the_kernel_that_actually_ran() {
        let binary = ZooModel::TfcW1A1
            .build_untrained(2, BnMode::Folded)
            .unwrap();
        let engine = BatchEngine::new(&binary);
        assert_eq!(
            engine.slab_breakdown(130),
            SlabBreakdown {
                slabs_full: 2,
                fallback_frames: 2,
            }
        );
        assert_eq!(engine.slab_breakdown(130).partial_slab_equivalents(), 1);
        assert_eq!(engine.slab_breakdown(128).partial_slab_equivalents(), 0);

        // A fallback-only model runs zero slabs no matter the batch
        // size; its frames count as partial slab-equivalents.
        let multibit = ZooModel::TfcW2A2
            .build_untrained(2, BnMode::Hardware)
            .unwrap();
        let engine = BatchEngine::new(&multibit);
        assert_eq!(
            engine.slab_breakdown(130),
            SlabBreakdown {
                slabs_full: 0,
                fallback_frames: 130,
            }
        );
        assert_eq!(engine.slab_breakdown(130).partial_slab_equivalents(), 3);
        assert_eq!(engine.slab_breakdown(0).partial_slab_equivalents(), 0);
    }

    #[test]
    fn batch_fast_matches_per_frame_fast_path_multibit() {
        let cfg = HwConfig::paper_instance();
        let model = ZooModel::TfcW2A2
            .build_untrained(5, BnMode::Hardware)
            .unwrap();
        let engine = BatchEngine::new(&model);
        assert!(!engine.is_bitsliced());
        assert_eq!(engine.chunk_width(), 1);
        let inputs = frames(model.input.len, 3);
        let batch = run_batch_fast(&cfg, &model, &inputs).unwrap();
        for (run, px) in batch.iter().zip(&inputs) {
            let words = netpu_compiler::compile(&model, px).unwrap().words;
            assert_eq!(run, &run_inference_fast(&cfg, words).unwrap());
        }
    }

    #[test]
    fn batch_fast_reports_softmax_probabilities() {
        let cfg = HwConfig {
            softmax_output: true,
            ..HwConfig::paper_instance()
        };
        let model = ZooModel::TfcW1A1
            .build_untrained(8, BnMode::Folded)
            .unwrap();
        let inputs = frames(model.input.len, 2);
        let batch = run_batch_fast(&cfg, &model, &inputs).unwrap();
        for (run, px) in batch.iter().zip(&inputs) {
            let words = netpu_compiler::compile(&model, px).unwrap().words;
            let single = run_inference_fast(&cfg, words).unwrap();
            assert_eq!(run.probabilities, single.probabilities);
            let p = run.probabilities.as_ref().unwrap();
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn batch_fast_validates_every_frame_length() {
        let cfg = HwConfig::paper_instance();
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let mut inputs = frames(model.input.len, 2);
        inputs.push(vec![0u8; 5]);
        assert!(matches!(
            run_batch_fast(&cfg, &model, &inputs),
            Err(NetPuError::Stream(StreamError::InputLength {
                expected: 784,
                got: 5
            }))
        ));
        assert!(run_batch_fast(&cfg, &model, &[]).unwrap().is_empty());
    }
}
