//! The Layer Processing Unit (§III.B.2, Fig. 4).
//!
//! An LPU owns a cluster of TNPUs, the data-buffer cluster of Table III,
//! and the layer control FSM. Its workflow has three steps:
//!
//! 1. *Layer Initialization* — latch the layer setting.
//! 2. *Neuron Initialization* — load per-neuron parameters from the
//!    buffer cluster into the TNPUs (one batch of `tnpus_per_lpu`
//!    neurons at a time, since the physical neuron count is smaller than
//!    the model's).
//! 3. *Neuron Processing* — stream weights through the Layer Weight
//!    buffer into the TNPUs until the batch's neurons finish; repeat
//!    from step 2 until every neuron of the layer has been inferred.
//!
//! Timing model (calibration notes in `DESIGN.md` §4): the Layer Weight
//! buffer is single-ported, so sustained weight consumption is one
//! 64-bit word per **two** cycles (ingest, then dispatch) — the §V data
//! loading bottleneck. `HwConfig::double_buffered_weights` removes the
//! ingest cycle (the paper's stated future-work optimization).

use crate::config::HwConfig;
use crate::tnpu::{LayerCfg, MaxOut, NeuronActivation, NeuronParams, Tnpu, TnpuOut};
use netpu_arith::{cast, ActivationKind, Fix, QuantParams};
use netpu_compiler::stream::{
    extract_weight, neuron_weight_words_mode, unpack_u32_pairs, uses_xnor_path, weights_per_word,
};
use netpu_compiler::{LayerSetting, LayerType, PackingMode};
use netpu_sim::engine::Tick;
use netpu_sim::{Cycle, DatapathProbe, Fifo, ProbeStage, StreamSource, Tracer};
use serde::{Deserialize, Serialize};

/// The Table III data-buffer cluster geometry: `(name, width, depth)`.
pub const BUFFER_CLUSTER: [(&str, u32, usize); 10] = [
    ("Layer Input", 64, 1024),
    ("Input Reload", 64, 1024),
    ("Layer Weight", 64, 1024),
    ("Bias", 64, 1024),
    ("BN Scale", 128, 2048),
    ("BN Offset", 128, 2048),
    ("Sign Threshold", 128, 2048),
    ("Multi-Thresholds", 128, 2048),
    ("QUAN Scale", 128, 2048),
    ("QUAN Offset", 128, 2048),
];

/// Pipeline fill/drain cycles per neuron batch (ACCU latch → BN → ACTIV
/// → QUAN).
pub const PIPELINE_DEPTH: u64 = 4;

/// Width of the parameter-buffer read port in 32-bit words (the 128-bit
/// buffers of Table III deliver four parameter words per cycle).
pub const PARAM_READ_WIDTH: usize = 4;

/// Per-layer cycle breakdown.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LpuStats {
    /// Cycles spent in Neuron Initialization.
    pub init_cycles: u64,
    /// Cycles spent ingesting/dispatching weight words.
    pub weight_cycles: u64,
    /// Cycles stalled waiting on the weight stream.
    pub stall_cycles: u64,
    /// Pipeline drain cycles.
    pub drain_cycles: u64,
    /// Output write / MaxOut cycles.
    pub output_cycles: u64,
    /// Input-layer processing cycles.
    pub input_cycles: u64,
    /// Weight words consumed.
    pub weight_words: u64,
}

impl LpuStats {
    /// Total busy cycles.
    pub fn total(&self) -> u64 {
        self.init_cycles
            + self.weight_cycles
            + self.stall_cycles
            + self.drain_cycles
            + self.output_cycles
            + self.input_cycles
    }
}

/// The result a finished layer hands back to the NetPU.
#[derive(Clone, Debug, PartialEq)]
pub enum LayerOutput {
    /// Hidden/input layer: activation levels (Sign levels as 0/1 bits).
    Levels(Vec<i32>),
    /// Output layer: MaxOut winner plus the raw per-class scores (the
    /// SoftMax unit consumes the latter when enabled).
    Class {
        /// Winning class index.
        class: usize,
        /// Winning score.
        score: Fix,
        /// All per-class scores in class order.
        scores: Vec<Fix>,
    },
}

/// Result of one [`Lpu::bulk_tick`] span — everything the NetPU needs
/// to keep its own cycle and stream accounting exact without having
/// observed the individual edges.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LpuBulk {
    /// Clock edges simulated (`1 ≤ advanced ≤ budget`).
    pub advanced: u64,
    /// Stream words consumed during the span.
    pub words: u64,
    /// Trailing edges since the last word take (equals `advanced` when
    /// nothing was taken). The caller uses this to decide which
    /// non-consuming edges saw an exhausted stream.
    pub tail: u64,
    /// Outcome of the final edge.
    pub tick: Tick,
}

/// Records one finalized neuron's tap values into an enabled probe:
/// the post-bias accumulator, the post-BN word when the route had a BN
/// stage, and the level or score that left the TNPU.
fn record_finalize(
    probe: &mut DatapathProbe,
    neuron: usize,
    tap: crate::tnpu::NeuronTap,
    out: TnpuOut,
) {
    probe.record(neuron, ProbeStage::Accumulator, i64::from(tap.acc));
    if let Some(bn) = tap.post_bn {
        probe.record(neuron, ProbeStage::PostBn, bn.raw());
    }
    match out {
        TnpuOut::Level(l) => probe.record(neuron, ProbeStage::Level, i64::from(l)),
        TnpuOut::Score(s) => probe.record(neuron, ProbeStage::Score, s.raw()),
    }
}

/// 32-bit activation-parameter words per neuron for a setting.
fn act_u32s(setting: &LayerSetting) -> usize {
    match setting.activation {
        ActivationKind::Sign => 1,
        ActivationKind::MultiThreshold => setting.out_precision.multi_threshold_count(),
        _ => 2,
    }
}

/// Decodes a layer's raw parameter-section words into per-neuron
/// parameters — the hardware's view of the buffer cluster contents.
/// Inverse of the compiler's parameter encoding.
pub fn decode_neuron_params(setting: &LayerSetting, words: &[u64]) -> Vec<NeuronParams> {
    let neurons = cast::usize_from_u32(setting.neurons);
    let mut pos = 0usize;
    let (biases, bns) = if setting.layer_type == LayerType::Input {
        (None, None)
    } else if setting.bn_folded {
        let n_words = neurons.div_ceil(8);
        let block = &words[..n_words];
        pos = n_words;
        let biases: Vec<i32> = (0..neurons)
            .map(|i| cast::sign_extend(u32::from(cast::lo8(block[i / 8] >> (8 * (i % 8)))), 8))
            .collect();
        (Some(biases), None)
    } else {
        let block = &words[..neurons];
        pos = neurons;
        let bns: Vec<netpu_nn::BnParams> = block
            .iter()
            .map(|&w| netpu_nn::BnParams {
                scale_q16: cast::i32_from_bits(cast::lo32(w)),
                offset: Fix::from_stream_word(cast::lo32(w >> 32)),
            })
            .collect();
        (None, Some(bns))
    };

    let acts: Vec<NeuronActivation> = if setting.layer_type == LayerType::Output {
        vec![NeuronActivation::None; neurons]
    } else {
        let per = act_u32s(setting);
        let vals = unpack_u32_pairs(&words[pos..], neurons * per);
        vals.chunks(per)
            .map(|row| match setting.activation {
                ActivationKind::Sign => NeuronActivation::Sign(Fix::from_stream_word(row[0])),
                ActivationKind::MultiThreshold => NeuronActivation::MultiThreshold(
                    row.iter().map(|&v| Fix::from_stream_word(v)).collect(),
                ),
                kind => {
                    let q = QuantParams {
                        scale: Fix::from_stream_word(row[0]),
                        offset: Fix::from_stream_word(row[1]),
                    };
                    match kind {
                        ActivationKind::Relu => NeuronActivation::Relu(q),
                        ActivationKind::Sigmoid => NeuronActivation::Sigmoid(q),
                        ActivationKind::Tanh => NeuronActivation::Tanh(q),
                        _ => unreachable!(),
                    }
                }
            })
            .collect()
    };

    acts.into_iter()
        .enumerate()
        .map(|(i, activation)| NeuronParams {
            bias: biases.as_ref().map(|b| b[i]),
            bn: bns.as_ref().map(|b| b[i]),
            activation,
        })
        .collect()
}

/// Neuron Initialization cycles for one neuron: one buffer read for the
/// bias/BN word plus 128-bit-wide reads for the activation parameters.
fn init_cycles_per_neuron(setting: &LayerSetting) -> u64 {
    let act_reads = if setting.layer_type == LayerType::Output {
        0
    } else {
        act_u32s(setting).div_ceil(PARAM_READ_WIDTH)
    };
    let bias_reads = usize::from(setting.layer_type != LayerType::Input);
    cast::u64_from_usize(act_reads + bias_reads)
}

#[derive(Clone, Debug, PartialEq)]
enum State {
    Idle,
    AwaitParams {
        remaining: usize,
    },
    Ready,
    InputLayer {
        word: usize,
        subcycle: u64,
    },
    BatchInit {
        batch_start: usize,
        left: u64,
    },
    /// Weight streaming: `subcycle` 0 ingests the word; subcycles
    /// 1..=groups dispatch it through the multiplier lanes (dense-packed
    /// words carry more weights than lanes and need several groups).
    Weights {
        batch_start: usize,
        t: usize,
        chunk: usize,
        subcycle: u32,
    },
    Drain {
        batch_start: usize,
        left: u64,
    },
    WriteOut {
        batch_start: usize,
        left: u64,
    },
    Done,
}

/// One Layer Processing Unit.
#[derive(Clone, Debug)]
pub struct Lpu {
    /// Instance index within the NetPU ring.
    pub id: usize,
    tnpus: Vec<Tnpu>,
    double_buffered: bool,
    softmax_output: bool,
    setting: Option<LayerSetting>,
    layer_cfg: Option<LayerCfg>,
    param_words: Vec<u64>,
    params: Vec<NeuronParams>,
    weight_fifo: Fifo<u64>,
    pending_word: u64,
    /// Scratch for fast-path weight extraction (avoids the per-group
    /// allocations of the reference tick path).
    weight_scratch: Vec<i32>,
    /// Fast-path XNOR cache: the Input Reload buffer's levels packed as
    /// bipolar bits, 64 per word, aligned to weight-word chunks. Rebuilt
    /// lazily after `set_inputs`; lets every weight-word MAC collapse to
    /// one XOR+popcount instead of a per-lane loop.
    packed_inputs: Vec<u64>,
    packed_inputs_stale: bool,
    packing: PackingMode,
    inputs: Vec<i32>,
    have_inputs: bool,
    outputs: Vec<i32>,
    scores: Vec<Fix>,
    maxout: MaxOut,
    state: State,
    /// Cycle breakdown for the current layer.
    pub stats: LpuStats,
}

impl Lpu {
    /// Builds an LPU per the hardware configuration.
    pub fn new(id: usize, cfg: &HwConfig) -> Lpu {
        Lpu {
            id,
            tnpus: (0..cfg.tnpus_per_lpu)
                .map(|_| Tnpu::new(cfg.mul_lanes))
                .collect(),
            double_buffered: cfg.double_buffered_weights,
            softmax_output: cfg.softmax_output,
            setting: None,
            layer_cfg: None,
            param_words: Vec::new(),
            params: Vec::new(),
            weight_fifo: Fifo::new("Layer Weight", 64, 1024),
            pending_word: 0,
            weight_scratch: Vec::new(),
            packed_inputs: Vec::new(),
            packed_inputs_stale: true,
            packing: PackingMode::Lanes8,
            inputs: Vec::new(),
            have_inputs: false,
            outputs: Vec::new(),
            scores: Vec::new(),
            maxout: MaxOut::default(),
            state: State::Idle,
            stats: LpuStats::default(),
        }
    }

    /// Number of TNPUs in the cluster.
    pub fn tnpu_count(&self) -> usize {
        self.tnpus.len()
    }

    /// `true` when the LPU holds no layer (free for LPU Resetting).
    pub fn is_idle(&self) -> bool {
        self.state == State::Idle
    }

    /// `true` when parameters are loaded and processing can start.
    pub fn is_ready(&self) -> bool {
        self.state == State::Ready
    }

    /// `true` when the layer finished and outputs are available.
    pub fn is_done(&self) -> bool {
        self.state == State::Done
    }

    /// Step 1 — Layer Initialization.
    pub fn begin_layer(
        &mut self,
        setting: LayerSetting,
        expected_param_words: usize,
        packing: PackingMode,
    ) {
        assert!(self.is_idle(), "LPU {} must be reset first", self.id);
        let cfg = LayerCfg {
            layer_type: setting.layer_type,
            in_precision: setting.in_precision,
            weight_precision: setting.weight_precision,
            out_precision: setting.out_precision,
        };
        for t in &mut self.tnpus {
            t.configure_layer(cfg);
        }
        self.layer_cfg = Some(cfg);
        self.setting = Some(setting);
        self.packing = packing;
        self.param_words.clear();
        self.params.clear();
        self.outputs.clear();
        self.scores.clear();
        self.maxout.reset();
        self.have_inputs = false;
        self.stats = LpuStats::default();
        self.state = if expected_param_words == 0 {
            State::Ready
        } else {
            State::AwaitParams {
                remaining: expected_param_words,
            }
        };
    }

    /// Feeds one parameter-section word; returns `true` when the section
    /// is complete (the buffer cluster is filled and decoded).
    pub fn ingest_param_word(&mut self, word: u64) -> bool {
        let State::AwaitParams { remaining } = self.state else {
            panic!("LPU {} not awaiting parameters", self.id);
        };
        self.param_words.push(word);
        if remaining == 1 {
            let Some(setting) = self.setting else {
                panic!("LPU {} has no layer begun", self.id)
            };
            self.params = decode_neuron_params(&setting, &self.param_words);
            self.state = State::Ready;
            true
        } else {
            self.state = State::AwaitParams {
                remaining: remaining - 1,
            };
            false
        }
    }

    /// Loads the previous layer's outputs (MAC-domain values) into the
    /// Layer Input / Input Reload buffers.
    pub fn set_inputs(&mut self, values: Vec<i32>) {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let expect = if setting.layer_type == LayerType::Input {
            cast::usize_from_u32(setting.neurons)
        } else {
            cast::usize_from_u32(setting.input_len)
        };
        assert_eq!(values.len(), expect, "LPU {} input length", self.id);
        self.inputs = values;
        self.have_inputs = true;
        self.packed_inputs_stale = true;
    }

    /// Input levels consumed per weight word for the current layer.
    fn levels_per_word(&self) -> usize {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        if uses_xnor_path(&setting) {
            64
        } else {
            weights_per_word(&setting, self.packing)
        }
    }

    /// Input levels a single dispatch subcycle can push through the
    /// multiplier lanes: `lanes` integer products, or `lanes × 8` XNOR
    /// channels.
    fn levels_per_group(&self) -> usize {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let lanes = self.tnpus[0].lanes();
        if uses_xnor_path(&setting) {
            lanes * 8
        } else {
            lanes
        }
    }

    /// Dispatch subcycles needed for input chunk `chunk` of the current
    /// layer (1 for the paper's lane packing; >1 when a dense word
    /// carries more weights than multiplier lanes).
    fn dispatch_groups(&self, chunk: usize) -> u32 {
        let span = self.chunk_span(chunk);
        cast::u32_sat_usize(span.div_ceil(self.levels_per_group()))
    }

    /// Number of input levels covered by chunk `chunk`.
    fn chunk_span(&self, chunk: usize) -> usize {
        let lpw = self.levels_per_word();
        let lo = chunk * lpw;
        let hi = ((chunk + 1) * lpw).min(self.inputs.len());
        hi.saturating_sub(lo)
    }

    /// Advances one clock cycle of steps 2–3. `stream` is the Network
    /// Input FIFO the weight section arrives on; the NetPU only calls
    /// this for the LPU whose weight section is current. `probe`
    /// records intermediate datapath values when enabled (the range
    /// analysis soundness hook).
    pub fn tick(
        &mut self,
        stream: &mut StreamSource,
        cycle: Cycle,
        tracer: &mut Tracer,
        probe: &mut DatapathProbe,
    ) -> Tick {
        let setting = match self.setting {
            Some(s) => s,
            None => return Tick::Stall,
        };
        match self.state {
            State::Idle | State::AwaitParams { .. } | State::Done => Tick::Stall,
            State::Ready => {
                if !self.have_inputs {
                    return Tick::Stall;
                }
                if setting.layer_type == LayerType::Input {
                    self.state = State::InputLayer {
                        word: 0,
                        subcycle: 0,
                    };
                } else {
                    self.state = State::BatchInit {
                        batch_start: 0,
                        left: self.batch_init_cost(0),
                    };
                    tracer.record(cycle, "lpu", || {
                        format!("lpu{} starts layer ({} neurons)", self.id, setting.neurons)
                    });
                }
                Tick::Progress
            }
            State::InputLayer { word, subcycle } => {
                // Each 64-bit input word: one read cycle, threshold-read
                // cycles for its eight pixels, one write cycle.
                let per_word_cost =
                    2 + cast::u64_from_usize((8 * act_u32s(&setting)).div_ceil(PARAM_READ_WIDTH));
                self.stats.input_cycles += 1;
                if subcycle + 1 < per_word_cost {
                    self.state = State::InputLayer {
                        word,
                        subcycle: subcycle + 1,
                    };
                    return Tick::Progress;
                }
                // Word complete: quantize its pixels through the TNPU
                // yellow path.
                let n = cast::usize_from_u32(setting.neurons);
                let lo = word * 8;
                let hi = ((word + 1) * 8).min(n);
                for i in lo..hi {
                    self.tnpus[0].load_neuron(self.params[i].clone());
                    let level = self.tnpus[0].process_input(self.inputs[i]);
                    if probe.is_enabled() {
                        probe.record(i, ProbeStage::Level, i64::from(level));
                    }
                    self.outputs.push(level);
                }
                if hi == n {
                    self.state = State::Done;
                    tracer.record(cycle, "lpu", || {
                        format!("lpu{} input layer done ({n} levels)", self.id)
                    });
                } else {
                    self.state = State::InputLayer {
                        word: word + 1,
                        subcycle: 0,
                    };
                }
                Tick::Progress
            }
            State::BatchInit { batch_start, left } => {
                self.stats.init_cycles += 1;
                if left > 1 {
                    self.state = State::BatchInit {
                        batch_start,
                        left: left - 1,
                    };
                    return Tick::Progress;
                }
                // Latch the batch's parameters into the TNPUs.
                let n = cast::usize_from_u32(setting.neurons);
                let end = (batch_start + self.tnpus.len()).min(n);
                for (t, neuron) in (batch_start..end).enumerate() {
                    self.tnpus[t].load_neuron(self.params[neuron].clone());
                }
                self.state = State::Weights {
                    batch_start,
                    t: 0,
                    chunk: 0,
                    subcycle: 0,
                };
                Tick::Progress
            }
            State::Weights {
                batch_start,
                t,
                chunk,
                subcycle,
            } => {
                // Single-port Layer Weight buffer: ingest on one cycle,
                // then one dispatch subcycle per multiplier-lane group
                // (double buffering hides the ingest cycle behind the
                // first dispatch group).
                if subcycle == 0 {
                    match stream.take() {
                        Some(w) => {
                            let pushed = self.weight_fifo.push(w);
                            debug_assert!(pushed, "weight FIFO overflow");
                            self.pending_word = self.weight_fifo.pop().unwrap_or(w);
                            self.stats.weight_words += 1;
                            self.stats.weight_cycles += 1;
                            if self.double_buffered {
                                self.dispatch_group(t, chunk, 0);
                                self.after_group(batch_start, t, chunk, 1, cycle, tracer);
                            } else {
                                self.state = State::Weights {
                                    batch_start,
                                    t,
                                    chunk,
                                    subcycle: 1,
                                };
                            }
                            Tick::Progress
                        }
                        None => {
                            self.stats.stall_cycles += 1;
                            Tick::Stall
                        }
                    }
                } else {
                    self.stats.weight_cycles += 1;
                    self.dispatch_group(t, chunk, subcycle - 1);
                    self.after_group(batch_start, t, chunk, subcycle, cycle, tracer);
                    Tick::Progress
                }
            }
            State::Drain { batch_start, left } => {
                self.stats.drain_cycles += 1;
                if left > 1 {
                    self.state = State::Drain {
                        batch_start,
                        left: left - 1,
                    };
                } else {
                    let n = cast::usize_from_u32(setting.neurons);
                    let end = (batch_start + self.tnpus.len()).min(n);
                    let write_cost = if setting.layer_type == LayerType::Output {
                        // MaxOut compares scores one per cycle; the
                        // SoftMax unit adds one exp evaluation each.
                        cast::u64_from_usize(end - batch_start)
                            * (1 + u64::from(self.softmax_output))
                    } else {
                        // Levels pack eight per output-buffer word.
                        cast::u64_from_usize((end - batch_start).div_ceil(8))
                    };
                    self.state = State::WriteOut {
                        batch_start,
                        left: write_cost.max(1),
                    };
                }
                Tick::Progress
            }
            State::WriteOut { batch_start, left } => {
                self.stats.output_cycles += 1;
                if left > 1 {
                    self.state = State::WriteOut {
                        batch_start,
                        left: left - 1,
                    };
                    return Tick::Progress;
                }
                // Finalize the batch through the TNPU post-MAC stages.
                let n = cast::usize_from_u32(setting.neurons);
                let end = (batch_start + self.tnpus.len()).min(n);
                for (t, neuron) in (batch_start..end).enumerate() {
                    let out = self.tnpus[t].finalize();
                    if probe.is_enabled() {
                        record_finalize(probe, neuron, self.tnpus[t].tap(), out);
                    }
                    match out {
                        TnpuOut::Level(l) => self.outputs.push(l),
                        TnpuOut::Score(s) => {
                            self.scores.push(s);
                            self.maxout.push(neuron, s);
                        }
                    }
                }
                if end == n {
                    self.state = State::Done;
                    tracer.record(cycle, "lpu", || {
                        format!(
                            "lpu{} layer done after {} weight words",
                            self.id, self.stats.weight_words
                        )
                    });
                } else {
                    self.state = State::BatchInit {
                        batch_start: end,
                        left: self.batch_init_cost(end),
                    };
                }
                Tick::Progress
            }
        }
    }

    /// Parameter words still expected by `ingest_param_word` (0 unless
    /// the LPU is in the AwaitParams step).
    pub fn param_words_remaining(&self) -> usize {
        match self.state {
            State::AwaitParams { remaining } => remaining,
            _ => 0,
        }
    }

    /// Fast-path counterpart of [`Lpu::tick`]: advances up to `budget`
    /// clock cycles in one call, skipping through phases whose length is
    /// known in closed form (neuron init, pipeline drain, write-out) and
    /// streaming whole weight words per loop iteration.
    ///
    /// Cycle-exact with the tick path: the same state transitions happen
    /// on the same edges, every [`LpuStats`] field advances identically,
    /// and stream words are consumed on the same cycles (via
    /// [`StreamSource::take_unmetered`]; the caller settles idle-cycle
    /// accounting from the returned [`LpuBulk`]). A stall — empty stream
    /// mid-weights, or a state the LPU cannot advance — is reported
    /// after at most one edge so deadlock detection keeps its timing.
    pub fn bulk_tick(
        &mut self,
        stream: &mut StreamSource,
        cycle: Cycle,
        budget: u64,
        tracer: &mut Tracer,
        probe: &mut DatapathProbe,
    ) -> LpuBulk {
        debug_assert!(budget >= 1, "bulk_tick needs a positive budget");
        let mut advanced: u64 = 0;
        let mut words: u64 = 0;
        let mut tail: u64 = 0;
        let progress = |advanced, words, tail| LpuBulk {
            advanced,
            words,
            tail,
            tick: Tick::Progress,
        };
        const STALL: LpuBulk = LpuBulk {
            advanced: 1,
            words: 0,
            tail: 1,
            tick: Tick::Stall,
        };
        let setting = match self.setting {
            Some(s) => s,
            None => return STALL,
        };
        loop {
            let left = budget - advanced;
            if left == 0 {
                return progress(advanced, words, tail);
            }
            match self.state {
                State::Idle | State::AwaitParams { .. } | State::Done => {
                    return if advanced > 0 {
                        progress(advanced, words, tail)
                    } else {
                        STALL
                    };
                }
                State::Ready => {
                    if !self.have_inputs {
                        return if advanced > 0 {
                            progress(advanced, words, tail)
                        } else {
                            STALL
                        };
                    }
                    if setting.layer_type == LayerType::Input {
                        self.state = State::InputLayer {
                            word: 0,
                            subcycle: 0,
                        };
                    } else {
                        self.state = State::BatchInit {
                            batch_start: 0,
                            left: self.batch_init_cost(0),
                        };
                        let now = cycle + advanced;
                        tracer.record(now, "lpu", || {
                            format!("lpu{} starts layer ({} neurons)", self.id, setting.neurons)
                        });
                    }
                    advanced += 1;
                    tail += 1;
                }
                State::InputLayer { word, subcycle } => {
                    let per = 2 + cast::u64_from_usize(
                        (8 * act_u32s(&setting)).div_ceil(PARAM_READ_WIDTH),
                    );
                    let n = cast::usize_from_u32(setting.neurons);
                    let n_words = cast::u64_from_usize(n.div_ceil(8));
                    let pos = cast::u64_from_usize(word) * per + subcycle;
                    let k = (n_words * per - pos).min(left);
                    self.stats.input_cycles += k;
                    advanced += k;
                    tail += k;
                    let pos = pos + k;
                    // Quantize the pixels of every word completed in
                    // this span through the TNPU yellow path.
                    for w in word..cast::usize_sat((pos / per).min(n_words)) {
                        let lo = w * 8;
                        let hi = ((w + 1) * 8).min(n);
                        for i in lo..hi {
                            self.tnpus[0].load_neuron(self.params[i].clone());
                            let level = self.tnpus[0].process_input(self.inputs[i]);
                            if probe.is_enabled() {
                                probe.record(i, ProbeStage::Level, i64::from(level));
                            }
                            self.outputs.push(level);
                        }
                    }
                    if pos == n_words * per {
                        self.state = State::Done;
                        tracer.record(cycle + advanced - 1, "lpu", || {
                            format!("lpu{} input layer done ({n} levels)", self.id)
                        });
                        return progress(advanced, words, tail);
                    }
                    self.state = State::InputLayer {
                        word: cast::usize_sat(pos / per),
                        subcycle: pos % per,
                    };
                }
                State::BatchInit {
                    batch_start,
                    left: need,
                } => {
                    let k = need.min(left);
                    self.stats.init_cycles += k;
                    advanced += k;
                    tail += k;
                    if k < need {
                        self.state = State::BatchInit {
                            batch_start,
                            left: need - k,
                        };
                    } else {
                        let n = cast::usize_from_u32(setting.neurons);
                        let end = (batch_start + self.tnpus.len()).min(n);
                        for (t, neuron) in (batch_start..end).enumerate() {
                            self.tnpus[t].load_neuron(self.params[neuron].clone());
                        }
                        self.state = State::Weights {
                            batch_start,
                            t: 0,
                            chunk: 0,
                            subcycle: 0,
                        };
                    }
                }
                State::Weights {
                    batch_start,
                    t,
                    chunk,
                    subcycle,
                } => {
                    // Effective group count: a zero-span tail word still
                    // costs one (empty) dispatch subcycle on the tick
                    // path.
                    let groups = self.dispatch_groups(chunk).max(1);
                    // Steady-state burst: when every chunk dispatches in a
                    // single group (the paper instance: 64 XNOR channels =
                    // one 64-bit word), whole words cost a fixed
                    // `cost` cycles each and the remaining words of the
                    // batch can be consumed in one tight loop — per-word
                    // stats identical, FIFO counters settled in bulk.
                    if subcycle == 0 && self.levels_per_group() >= self.levels_per_word() {
                        let cost = if self.double_buffered { 1u64 } else { 2u64 };
                        let chunks = neuron_weight_words_mode(&setting, self.packing);
                        let n = cast::usize_from_u32(setting.neurons);
                        let end = (batch_start + self.tnpus.len()).min(n);
                        let batch = end - batch_start;
                        let in_batch = cast::u64_from_usize(batch - t)
                            * cast::u64_from_usize(chunks)
                            - cast::u64_from_usize(chunk);
                        let m = (left / cost)
                            .min(cast::u64_from_usize(stream.remaining()))
                            .min(in_batch);
                        if m >= 1 {
                            let xnor = uses_xnor_path(&setting);
                            if xnor && self.packed_inputs_stale {
                                self.packed_inputs =
                                    netpu_arith::quant::pack_binary_channels(&self.inputs);
                                self.packed_inputs_stale = false;
                            }
                            let lpw = self.levels_per_word();
                            let (mut ct, mut cc) = (t, chunk);
                            let taken = stream.take_words(cast::usize_sat(m));
                            for &w in taken {
                                let lo = cc * lpw;
                                let span = self.inputs.len().saturating_sub(lo).min(lpw);
                                if span > 0 {
                                    if xnor {
                                        self.tnpus[ct].mac_word_prepacked(
                                            self.packed_inputs[cc],
                                            cast::u32_sat_usize(span),
                                            w,
                                        );
                                    } else {
                                        self.weight_scratch.clear();
                                        self.weight_scratch.extend(
                                            (0..span).map(|i| {
                                                extract_weight(w, i, &setting, self.packing)
                                            }),
                                        );
                                        self.tnpus[ct].mac_values(
                                            &self.inputs[lo..lo + span],
                                            &self.weight_scratch,
                                        );
                                    }
                                }
                                cc += 1;
                                if cc == chunks {
                                    cc = 0;
                                    ct += 1;
                                }
                            }
                            if let Some(&last) = taken.last() {
                                self.pending_word = last;
                            }
                            self.weight_fifo.settle_push_pops(m);
                            self.stats.weight_words += m;
                            self.stats.weight_cycles += m * cost;
                            advanced += m * cost;
                            words += m;
                            tail = cost - 1;
                            if ct == batch {
                                self.state = State::Drain {
                                    batch_start,
                                    left: PIPELINE_DEPTH,
                                };
                            } else {
                                self.state = State::Weights {
                                    batch_start,
                                    t: ct,
                                    chunk: cc,
                                    subcycle: 0,
                                };
                            }
                            continue;
                        }
                    }
                    if subcycle == 0 {
                        let Some(w) = stream.take_unmetered() else {
                            return if advanced > 0 {
                                progress(advanced, words, tail)
                            } else {
                                self.stats.stall_cycles += 1;
                                STALL
                            };
                        };
                        self.pending_word = self.weight_fifo.push_pop(w).unwrap_or(w);
                        self.stats.weight_words += 1;
                        words += 1;
                        let cost = if self.double_buffered {
                            u64::from(groups)
                        } else {
                            1 + u64::from(groups)
                        };
                        let k = cost.min(left);
                        self.stats.weight_cycles += k;
                        advanced += k;
                        tail = k - 1;
                        // The ingest edge dispatches group 0 only when
                        // double-buffered; each further edge one group.
                        let dispatched =
                            cast::u32_sat(if self.double_buffered { k } else { k - 1 });
                        for group in 0..dispatched {
                            self.dispatch_group_fast(t, chunk, group);
                        }
                        if k == cost {
                            self.after_group(batch_start, t, chunk, groups, cycle, tracer);
                        } else {
                            self.state = State::Weights {
                                batch_start,
                                t,
                                chunk,
                                subcycle: dispatched + 1,
                            };
                        }
                    } else {
                        // Resuming mid-word (a previous span ran out of
                        // budget): groups subcycle−1 … groups−1 remain.
                        let remaining = u64::from(groups - (subcycle - 1));
                        let k = remaining.min(left);
                        self.stats.weight_cycles += k;
                        advanced += k;
                        tail += k;
                        for group in (subcycle - 1)..(subcycle - 1 + cast::u32_sat(k)) {
                            self.dispatch_group_fast(t, chunk, group);
                        }
                        if k == remaining {
                            self.after_group(batch_start, t, chunk, groups, cycle, tracer);
                        } else {
                            self.state = State::Weights {
                                batch_start,
                                t,
                                chunk,
                                subcycle: subcycle + cast::u32_sat(k),
                            };
                        }
                    }
                }
                State::Drain {
                    batch_start,
                    left: need,
                } => {
                    let k = need.min(left);
                    self.stats.drain_cycles += k;
                    advanced += k;
                    tail += k;
                    if k < need {
                        self.state = State::Drain {
                            batch_start,
                            left: need - k,
                        };
                    } else {
                        let n = cast::usize_from_u32(setting.neurons);
                        let end = (batch_start + self.tnpus.len()).min(n);
                        let write_cost = if setting.layer_type == LayerType::Output {
                            cast::u64_from_usize(end - batch_start)
                                * (1 + u64::from(self.softmax_output))
                        } else {
                            cast::u64_from_usize((end - batch_start).div_ceil(8))
                        };
                        self.state = State::WriteOut {
                            batch_start,
                            left: write_cost.max(1),
                        };
                    }
                }
                State::WriteOut {
                    batch_start,
                    left: need,
                } => {
                    let k = need.min(left);
                    self.stats.output_cycles += k;
                    advanced += k;
                    tail += k;
                    if k < need {
                        self.state = State::WriteOut {
                            batch_start,
                            left: need - k,
                        };
                        continue;
                    }
                    let n = cast::usize_from_u32(setting.neurons);
                    let end = (batch_start + self.tnpus.len()).min(n);
                    for (t, neuron) in (batch_start..end).enumerate() {
                        let out = self.tnpus[t].finalize();
                        if probe.is_enabled() {
                            record_finalize(probe, neuron, self.tnpus[t].tap(), out);
                        }
                        match out {
                            TnpuOut::Level(l) => self.outputs.push(l),
                            TnpuOut::Score(s) => {
                                self.scores.push(s);
                                self.maxout.push(neuron, s);
                            }
                        }
                    }
                    if end == n {
                        self.state = State::Done;
                        tracer.record(cycle + advanced - 1, "lpu", || {
                            format!(
                                "lpu{} layer done after {} weight words",
                                self.id, self.stats.weight_words
                            )
                        });
                        return progress(advanced, words, tail);
                    }
                    self.state = State::BatchInit {
                        batch_start: end,
                        left: self.batch_init_cost(end),
                    };
                }
            }
        }
    }

    /// Neuron Initialization cost for the batch starting at `start`.
    fn batch_init_cost(&self, start: usize) -> u64 {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let n = cast::usize_from_u32(setting.neurons);
        let batch = (start + self.tnpus.len()).min(n) - start;
        (init_cycles_per_neuron(&setting) * cast::u64_from_usize(batch)).max(1)
    }

    /// Runs one dispatch group of the pending weight word through the
    /// MUL/ACCU stages of TNPU `t`: up to `mul_lanes` integer products
    /// (or `mul_lanes × 8` XNOR channels) against the matching slice of
    /// the Input Reload buffer.
    fn dispatch_group(&mut self, t: usize, chunk: usize, group: u32) {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let lpw = self.levels_per_word();
        let lpg = self.levels_per_group();
        let word_lo = chunk * lpw;
        let lo = word_lo + cast::usize_from_u32(group) * lpg;
        let hi = (lo + lpg).min(word_lo + lpw).min(self.inputs.len());
        if lo >= hi {
            return; // tail padding
        }
        let slice: Vec<i32> = self.inputs[lo..hi].to_vec();
        if uses_xnor_path(&setting) {
            // Shift the relevant channel window down to bit 0.
            let word = self.pending_word >> (cast::usize_from_u32(group) * lpg);
            self.tnpus[t].mac_word(&slice, word);
        } else {
            let base = cast::usize_from_u32(group) * lpg;
            let weights: Vec<i32> = (0..slice.len())
                .map(|i| extract_weight(self.pending_word, base + i, &setting, self.packing))
                .collect();
            self.tnpus[t].mac_values(&slice, &weights);
        }
    }

    /// [`Lpu::dispatch_group`] without the per-group allocations or the
    /// per-lane XNOR loop: input levels are pre-packed into bipolar bit
    /// words (64 at a time, chunk-aligned), so an XNOR-path group is one
    /// XOR+popcount; integer-path weights land in a reused scratch
    /// buffer. Numerically identical to the tick path.
    fn dispatch_group_fast(&mut self, t: usize, chunk: usize, group: u32) {
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let lpw = self.levels_per_word();
        let lpg = self.levels_per_group();
        let word_lo = chunk * lpw;
        let lo = word_lo + cast::usize_from_u32(group) * lpg;
        let hi = (lo + lpg).min(word_lo + lpw).min(self.inputs.len());
        if lo >= hi {
            return; // tail padding
        }
        if uses_xnor_path(&setting) {
            if self.packed_inputs_stale {
                self.packed_inputs = netpu_arith::quant::pack_binary_channels(&self.inputs);
                self.packed_inputs_stale = false;
            }
            let shift = cast::usize_from_u32(group) * lpg;
            let bits = self.packed_inputs[chunk] >> shift;
            let word = self.pending_word >> shift;
            self.tnpus[t].mac_word_prepacked(bits, cast::u32_sat_usize(hi - lo), word);
        } else {
            let base = cast::usize_from_u32(group) * lpg;
            let word = self.pending_word;
            self.weight_scratch.clear();
            self.weight_scratch.extend(
                (0..hi - lo).map(|i| extract_weight(word, base + i, &setting, self.packing)),
            );
            self.tnpus[t].mac_values(&self.inputs[lo..hi], &self.weight_scratch);
        }
    }

    /// Advances the dispatch iteration after a completed subcycle:
    /// next group of the same word, next word of the same neuron
    /// (neuron-major order), next neuron, or pipeline drain.
    fn after_group(
        &mut self,
        batch_start: usize,
        t: usize,
        chunk: usize,
        completed_subcycle: u32,
        _cycle: Cycle,
        _tracer: &mut Tracer,
    ) {
        if completed_subcycle < self.dispatch_groups(chunk) {
            self.state = State::Weights {
                batch_start,
                t,
                chunk,
                subcycle: completed_subcycle + 1,
            };
            return;
        }
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        let chunks = neuron_weight_words_mode(&setting, self.packing);
        let n = cast::usize_from_u32(setting.neurons);
        let end = (batch_start + self.tnpus.len()).min(n);
        let batch = end - batch_start;
        let (next_t, next_chunk) = if chunk + 1 < chunks {
            (t, chunk + 1)
        } else {
            (t + 1, 0)
        };
        if next_t < batch {
            self.state = State::Weights {
                batch_start,
                t: next_t,
                chunk: next_chunk,
                subcycle: 0,
            };
        } else {
            self.state = State::Drain {
                batch_start,
                left: PIPELINE_DEPTH,
            };
        }
    }

    /// Collects the finished layer's result.
    pub fn take_output(&mut self) -> LayerOutput {
        assert!(self.is_done(), "LPU {} not done", self.id);
        let Some(setting) = self.setting else {
            panic!("LPU {} has no layer begun", self.id)
        };
        if setting.layer_type == LayerType::Output {
            let (Some(class), Some(score)) = (self.maxout.result(), self.maxout.best_score())
            else {
                panic!("LPU {} output layer produced no scores", self.id)
            };
            LayerOutput::Class {
                class,
                score,
                scores: std::mem::take(&mut self.scores),
            }
        } else {
            LayerOutput::Levels(std::mem::take(&mut self.outputs))
        }
    }

    /// Step of the NetPU workflow: LPU Resetting — frees the LPU for its
    /// next assigned layer.
    pub fn reset(&mut self) {
        self.setting = None;
        self.layer_cfg = None;
        self.param_words.clear();
        self.params.clear();
        self.inputs.clear();
        self.have_inputs = false;
        self.packed_inputs_stale = true;
        self.outputs.clear();
        self.scores.clear();
        self.weight_fifo.clear();
        self.state = State::Idle;
    }

    /// Block-RAM cost of the Table III buffer cluster (for the resource
    /// model).
    pub fn buffer_bram36() -> f64 {
        BUFFER_CLUSTER
            .iter()
            .map(|&(_, w, d)| netpu_sim::fifo::bram36_for(w, d))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_arith::Precision;

    #[test]
    fn buffer_cluster_matches_table3() {
        assert_eq!(BUFFER_CLUSTER.len(), 10);
        // 4 × 64-wide×1024 buffers at 2 BRAM36 each, 6 × 128-wide×2048 at
        // 8 BRAM36 each → 56 per LPU.
        assert_eq!(Lpu::buffer_bram36(), 56.0);
    }

    #[test]
    fn init_cost_depends_on_activation() {
        let base = LayerSetting {
            layer_type: LayerType::Hidden,
            activation: ActivationKind::Sign,
            bn_folded: true,
            in_precision: Precision::W1,
            weight_precision: Precision::W1,
            out_precision: Precision::W1,
            neurons: 8,
            input_len: 64,
        };
        // Sign: 1 bias read + 1 threshold read.
        assert_eq!(init_cycles_per_neuron(&base), 2);
        // 4-bit multi-threshold: 15 params → 4 reads + bias.
        let mt = LayerSetting {
            activation: ActivationKind::MultiThreshold,
            out_precision: Precision::W4,
            ..base
        };
        assert_eq!(init_cycles_per_neuron(&mt), 5);
        // Output layer: bias read only.
        let out = LayerSetting {
            layer_type: LayerType::Output,
            ..base
        };
        assert_eq!(init_cycles_per_neuron(&out), 1);
    }

    #[test]
    fn decode_neuron_params_roundtrips_with_compiler() {
        use netpu_nn::export::BnMode;
        use netpu_nn::ZooModel;
        for mode in [BnMode::Folded, BnMode::Hardware] {
            let model = ZooModel::TfcW2A2.build_untrained(5, mode).unwrap();
            let pixels = vec![0u8; model.input.len];
            let loadable = netpu_compiler::compile(&model, &pixels).unwrap();
            let settings = netpu_compiler::stream::model_settings(&model);
            // Hidden layer 1's parameter section.
            let (_, layer, range) = loadable.layout.sections[1].clone();
            assert_eq!(layer, 1);
            let params = decode_neuron_params(&settings[1], &loadable.words[range]);
            assert_eq!(params.len(), 64);
            let h = &model.hidden[0];
            for (n, p) in params.iter().enumerate() {
                match mode {
                    BnMode::Folded => {
                        assert_eq!(p.bias, Some(h.bias.as_ref().unwrap()[n]));
                        assert!(p.bn.is_none());
                    }
                    BnMode::Hardware => {
                        assert!(p.bias.is_none());
                        assert_eq!(p.bn.as_ref().unwrap(), &h.bn.as_ref().unwrap()[n]);
                    }
                }
                match (&p.activation, &h.activation) {
                    (
                        NeuronActivation::MultiThreshold(got),
                        netpu_nn::LayerActivation::MultiThreshold { thresholds },
                    ) => assert_eq!(got, &thresholds[n]),
                    other => panic!("unexpected activation decode: {other:?}"),
                }
            }
        }
    }
}
