//! Hardware-generation configuration.
//!
//! The paper generates Verilog through macro definitions emitted by a
//! C++ configuration program, so one codebase instantiates differently
//! sized accelerators per FPGA platform (§III.A). [`HwConfig`] is that
//! configuration surface: structural parameters fixed at "synthesis"
//! time, as opposed to the per-model settings that arrive over the data
//! stream at runtime.

use serde::{Deserialize, Serialize};

/// Whether a wide multiplier is mapped to DSP slices or LUT fabric
/// (the Table IV "BN Mul Mode" axis).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MulImpl {
    /// DSP-slice multiplier.
    Dsp,
    /// LUT-fabric multiplier.
    Lut,
}

/// Structural (synthesis-time) parameters of a NetPU-M instance.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct HwConfig {
    /// LPUs in the recycling ring (the paper's instance uses 2; the
    /// §III.B.3 stream interleave requires at least 2 — parameters of
    /// layer k+1 precede weights of layer k, so with a single LPU the
    /// stream would deadlock waiting for the LPU to free up).
    pub lpus: usize,
    /// TNPUs per LPU (the paper's instance uses 8).
    pub tnpus_per_lpu: usize,
    /// Parallel multiplier lanes per TNPU (8 in the paper: eight 8-bit
    /// integer multipliers plus eight 8-bit XNOR multipliers).
    pub mul_lanes: usize,
    /// Maximum Multi-Threshold output precision supported (the paper
    /// caps its instance at 4 bits; 8 bits costs ~27% of the Ultra96's
    /// LUTs per TNPU, Table IV).
    pub max_multithreshold_bits: u8,
    /// BN multiplier mapping.
    pub bn_mul: MulImpl,
    /// Integer activation/weight multiplier mapping.
    pub int_mul: MulImpl,
    /// Weight-buffer double buffering: `false` models the paper's
    /// single-port Layer Weight buffer (one stream word consumed per two
    /// cycles: ingest, then dispatch); `true` is the §V "optimize the
    /// data loading schemes" future work (one word per cycle).
    pub double_buffered_weights: bool,
    /// Whether the instance's weight-unpack logic supports the §V
    /// multi-channel dense packing mode (`PackingMode::Dense` streams).
    /// The paper's instance does not; streams flagged dense are rejected
    /// when this is `false`.
    pub dense_weight_packing: bool,
    /// Whether the output stage carries the SoftMax unit (the paper's
    /// §III.B.1 future work): per-class fixed-point exponentials are
    /// streamed out alongside the MaxOut class. Off in the paper's
    /// instance.
    pub softmax_output: bool,
    /// Clock frequency the latency results are reported at (MHz).
    pub clock_mhz: f64,
    /// Accumulator width in bits (signed two's complement), fixed at
    /// generation time like the paper's 32-bit comparators. The model's
    /// MAC datapath saturates at 32 bits; narrower instances trade
    /// fabric for overflow risk, which `netpu-check`'s range analysis
    /// (NPC014/NPC019) proves safe or unsafe per loadable.
    pub accumulator_bits: u8,
}

impl HwConfig {
    /// The instance evaluated in Tables V/VI: 2 LPUs × 8 TNPUs, 4-bit
    /// Multi-Threshold cap, pure-DSP multipliers, 100 MHz.
    pub fn paper_instance() -> HwConfig {
        HwConfig {
            lpus: 2,
            tnpus_per_lpu: 8,
            mul_lanes: 8,
            max_multithreshold_bits: 4,
            bn_mul: MulImpl::Dsp,
            int_mul: MulImpl::Dsp,
            double_buffered_weights: false,
            dense_weight_packing: false,
            softmax_output: false,
            clock_mhz: 100.0,
            accumulator_bits: 32,
        }
    }

    /// Total TNPUs in the instance.
    pub fn total_tnpus(&self) -> usize {
        self.lpus * self.tnpus_per_lpu
    }

    /// Validates the structural parameters.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.lpus < 2 {
            return Err(ConfigError::TooFewLpus(self.lpus));
        }
        if self.tnpus_per_lpu == 0 {
            return Err(ConfigError::NoTnpus);
        }
        if self.mul_lanes == 0 || self.mul_lanes > 8 {
            return Err(ConfigError::BadLanes(self.mul_lanes));
        }
        if !(1..=8).contains(&self.max_multithreshold_bits) {
            return Err(ConfigError::BadMaxMtBits(self.max_multithreshold_bits));
        }
        if self.clock_mhz.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ConfigError::BadClock);
        }
        if !(8..=32).contains(&self.accumulator_bits) {
            return Err(ConfigError::BadAccumulatorBits(self.accumulator_bits));
        }
        Ok(())
    }
}

impl Default for HwConfig {
    fn default() -> HwConfig {
        HwConfig::paper_instance()
    }
}

/// Structural-parameter validation failures.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ConfigError {
    /// Fewer than two LPUs cannot consume the interleaved stream order.
    TooFewLpus(usize),
    /// At least one TNPU per LPU is required.
    NoTnpus,
    /// Multiplier lanes must be 1–8 (the 64-bit stream word width).
    BadLanes(usize),
    /// Multi-threshold cap must be 1–8 bits.
    BadMaxMtBits(u8),
    /// Clock must be positive.
    BadClock,
    /// Accumulator width must be 8–32 bits.
    BadAccumulatorBits(u8),
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewLpus(n) => write!(
                f,
                "{n} LPU(s): the §III.B.3 stream interleave needs at least 2"
            ),
            ConfigError::NoTnpus => f.write_str("at least one TNPU per LPU required"),
            ConfigError::BadLanes(n) => write!(f, "mul_lanes {n} outside 1..=8"),
            ConfigError::BadMaxMtBits(b) => write!(f, "max multi-threshold bits {b} outside 1..=8"),
            ConfigError::BadClock => f.write_str("clock frequency must be positive"),
            ConfigError::BadAccumulatorBits(b) => {
                write!(f, "accumulator width {b} outside 8..=32 bits")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instance_is_valid() {
        let c = HwConfig::paper_instance();
        c.validate().unwrap();
        assert_eq!(c.total_tnpus(), 16);
        assert_eq!(c.clock_mhz, 100.0);
    }

    #[test]
    fn single_lpu_rejected() {
        let c = HwConfig {
            lpus: 1,
            ..HwConfig::paper_instance()
        };
        assert_eq!(c.validate(), Err(ConfigError::TooFewLpus(1)));
    }

    #[test]
    fn bad_parameters_rejected() {
        let base = HwConfig::paper_instance();
        assert!(HwConfig {
            tnpus_per_lpu: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            mul_lanes: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            mul_lanes: 9,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            max_multithreshold_bits: 0,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            max_multithreshold_bits: 9,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            clock_mhz: 0.0,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            accumulator_bits: 7,
            ..base
        }
        .validate()
        .is_err());
        assert!(HwConfig {
            accumulator_bits: 33,
            ..base
        }
        .validate()
        .is_err());
    }
}
