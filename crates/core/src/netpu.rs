//! The top-level Network Processing Unit (§III.B.3, Fig. 2).
//!
//! The NetPU owns the LPU ring (the *Recycling Layer Structure*), the
//! NetPU FIFO cluster, and the in/output control. Its workflow:
//!
//! 1. *NetPU Initialization* — read the layer count and all layer
//!    settings from the Network Input FIFO into the Layer Setting FIFO.
//! 2. *LPU Initialization* — load the dataset input into the first LPU
//!    and distribute layer settings + parameters.
//! 3. *LPU Processing* — LPUs consume their weight sections and infer;
//!    outputs of each LPU feed the next LPU in the ring.
//! 4. *LPU Resetting* — a finished LPU is re-initialised with the next
//!    unprocessed layer (layer k runs on LPU `k mod L`).
//!
//! Because the host pre-packages the stream in the §III.B.3 order, the
//! runtime control here is *only* data streaming: every cycle the top
//! FSM either routes one stream word or advances the active LPU.

use crate::config::{ConfigError, HwConfig};
use crate::lpu::{LayerOutput, Lpu, LpuStats};
use netpu_arith::{cast, Fix};
use netpu_compiler::stream::{input_words, param_words, StreamError};
use netpu_compiler::{LayerSetting, LayerType, PackingMode};
use netpu_nn::reference::to_mac_domain;
use netpu_sim::engine::Tick;
use netpu_sim::{
    BulkClocked, Clocked, Cycle, DatapathProbe, SimError, Simulator, StreamSink, StreamSource,
    Tracer,
};
use serde::{Deserialize, Serialize};

/// Cycles to reset a finished LPU for its next layer.
pub const RESET_CYCLES: u64 = 2;

/// Top-level cycle accounting.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct NetPuStats {
    /// Header + layer-setting ingestion cycles.
    pub settings_cycles: u64,
    /// Dataset-input ingestion cycles.
    pub input_ingest_cycles: u64,
    /// Parameter-section ingestion cycles (all layers).
    pub param_cycles: u64,
    /// LPU processing cycles (all layers).
    pub process_cycles: u64,
    /// LPU reset cycles.
    pub reset_cycles: u64,
    /// Per-layer LPU breakdowns, in layer order.
    pub layers: Vec<LpuStats>,
}

impl NetPuStats {
    /// Total accounted cycles.
    pub fn total(&self) -> u64 {
        self.settings_cycles
            + self.input_ingest_cycles
            + self.param_cycles
            + self.process_cycles
            + self.reset_cycles
    }
}

/// Errors raised while driving the accelerator.
#[derive(Clone, PartialEq, Debug)]
pub enum NetPuError {
    /// Structural configuration rejected.
    Config(ConfigError),
    /// The stream was malformed.
    Stream(StreamError),
    /// The simulation harness gave up.
    Sim(SimError),
    /// The run finished without producing a classification result.
    Incomplete,
}

impl std::fmt::Display for NetPuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetPuError::Config(e) => write!(f, "configuration: {e}"),
            NetPuError::Stream(e) => write!(f, "stream: {e}"),
            NetPuError::Sim(e) => write!(f, "simulation: {e}"),
            NetPuError::Incomplete => f.write_str("run finished without a classification result"),
        }
    }
}

impl std::error::Error for NetPuError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetPuError::Config(e) => Some(e),
            NetPuError::Stream(e) => Some(e),
            NetPuError::Sim(e) => Some(e),
            NetPuError::Incomplete => None,
        }
    }
}

/// One step of the §III.B.3 section walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Section {
    /// Ingest the parameter section of layer `k` into LPU `k mod L`.
    Params(usize),
    /// Consume layer `k`'s weight section while LPU `k mod L` processes.
    Process(usize),
}

#[derive(Clone, Debug, PartialEq)]
enum TopState {
    Header,
    Settings { idx: usize },
    InputIngest { idx: usize },
    Sections { idx: usize, entered: bool },
    Resetting { idx: usize, left: u64 },
    Done,
    Failed,
}

/// The NetPU accelerator instance.
#[derive(Clone, Debug)]
pub struct NetPu {
    cfg: HwConfig,
    lpus: Vec<Lpu>,
    stream: StreamSource,
    sink: StreamSink,
    tracer: Tracer,
    probe: DatapathProbe,
    state: TopState,
    settings: Vec<LayerSetting>,
    sections: Vec<Section>,
    packing: PackingMode,
    pixels: Vec<i32>,
    result: Option<(usize, Fix)>,
    results: Vec<(usize, Fix, Cycle)>,
    scores: Vec<Fix>,
    error: Option<StreamError>,
    /// Cycle accounting.
    pub stats: NetPuStats,
}

impl NetPu {
    /// Builds an instance fed by `stream` (the DMA-filled Network Input
    /// FIFO).
    pub fn new(cfg: HwConfig, stream: StreamSource) -> Result<NetPu, NetPuError> {
        cfg.validate().map_err(NetPuError::Config)?;
        Ok(NetPu {
            lpus: (0..cfg.lpus).map(|i| Lpu::new(i, &cfg)).collect(),
            cfg,
            stream,
            sink: StreamSink::new(),
            tracer: Tracer::disabled(),
            probe: DatapathProbe::disabled(),
            state: TopState::Header,
            settings: Vec::new(),
            sections: Vec::new(),
            packing: PackingMode::Lanes8,
            pixels: Vec::new(),
            result: None,
            results: Vec::new(),
            scores: Vec::new(),
            error: None,
            stats: NetPuStats::default(),
        })
    }

    /// Enables bounded event tracing.
    pub fn with_tracer(mut self, tracer: Tracer) -> NetPu {
        self.tracer = tracer;
        self
    }

    /// Attaches a datapath probe recording every intermediate
    /// accumulator / BN / level / score value (the range-analysis
    /// soundness hook).
    pub fn with_probe(mut self, probe: DatapathProbe) -> NetPu {
        self.probe = probe;
        self
    }

    /// The classification result once inference finished.
    pub fn result(&self) -> Option<(usize, Fix)> {
        self.result
    }

    /// Every completed inference in a multi-inference stream:
    /// `(class, score, completion cycle)`.
    pub fn results(&self) -> &[(usize, Fix, Cycle)] {
        &self.results
    }

    /// The raw per-class output scores once inference finished.
    pub fn scores(&self) -> &[Fix] {
        &self.scores
    }

    /// Class probabilities from the SoftMax unit; `None` unless the
    /// instance was configured with `softmax_output`.
    pub fn probabilities(&self) -> Option<Vec<f64>> {
        if self.cfg.softmax_output && !self.scores.is_empty() {
            Some(netpu_arith::softmax::softmax(&self.scores))
        } else {
            None
        }
    }

    /// The stream error that aborted inference, if any.
    pub fn error(&self) -> Option<&StreamError> {
        self.error.as_ref()
    }

    /// The Network Output FIFO.
    pub fn sink(&self) -> &StreamSink {
        &self.sink
    }

    /// The event trace.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Takes the event trace out of the instance, leaving a disabled
    /// tracer behind — the hand-off for per-run trace hooks.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Takes the datapath probe out of the instance, leaving a disabled
    /// probe behind — the hand-off for per-run probed inference.
    pub fn take_probe(&mut self) -> DatapathProbe {
        std::mem::take(&mut self.probe)
    }

    fn fail(&mut self, e: StreamError) -> Tick {
        self.error = Some(e);
        self.state = TopState::Failed;
        Tick::Done
    }

    fn lpu_of(&self, layer: usize) -> usize {
        layer % self.cfg.lpus
    }

    /// Builds the §III.B.3 section order for `n` layers:
    /// P0, (P1, W0), (P2, W1), …, (P(n−1), W(n−2)), W(n−1).
    fn build_sections(n: usize) -> Vec<Section> {
        let mut v = Vec::with_capacity(2 * n);
        v.push(Section::Params(0));
        for k in 1..n {
            v.push(Section::Params(k));
            v.push(Section::Process(k - 1));
        }
        v.push(Section::Process(n - 1));
        v
    }

    /// Routes a finished layer's output to the next LPU or the Network
    /// Output FIFO.
    fn route_layer_output(&mut self, layer: usize, cycle: Cycle) {
        let id = self.lpu_of(layer);
        let out = self.lpus[id].take_output();
        match out {
            LayerOutput::Levels(levels) => {
                let next = self.lpu_of(layer + 1);
                // The Output Multiplexer connects this LPU's output port
                // to the next LPU's Layer Input buffer.
                let mac = to_mac_domain(&levels, self.settings[layer].out_precision);
                self.lpus[next].set_inputs(mac);
            }
            LayerOutput::Class {
                class,
                score,
                scores,
            } => {
                let word = cast::u64_from_usize(class) | (u64::from(score.to_stream_word()) << 32);
                self.sink.push(cycle, word);
                if self.cfg.softmax_output {
                    // The SoftMax unit streams one Q16.16 exponential
                    // per class behind the MaxOut word.
                    let max = scores.iter().copied().fold(Fix::MIN, Fix::max);
                    for (i, &s) in scores.iter().enumerate() {
                        let e = cast::u64_sat_i64(netpu_arith::softmax::exp_q16(s.sat_sub(max)));
                        self.sink.push(cycle, cast::u64_from_usize(i) | (e << 32));
                    }
                }
                self.result = Some((class, score));
                self.results.push((class, score, cycle));
                self.scores = scores;
                self.tracer.record(cycle, "netpu", || {
                    format!("inference done: class {class} score {score}")
                });
            }
        }
        self.stats.layers.push(self.lpus[id].stats);
    }

    /// Stream idle cycles accumulated so far (cycles in which the
    /// Network Input FIFO held data nobody consumed) — exposed so the
    /// fast path's closed-form idle accounting can be checked against
    /// the tick path.
    pub fn stream_idle_cycles(&self) -> u64 {
        self.stream.idle_cycles()
    }

    /// One tick-path edge plus the stream bookkeeping
    /// [`run_to_completion`] performs per cycle — the fast path's
    /// fallback for control states that route at most one word.
    fn single_step(&mut self, cycle: Cycle) -> (Cycle, Tick) {
        let t = self.tick(cycle);
        self.stream.next_cycle();
        (1, t)
    }

    /// Fast-path step: advances up to `budget` cycles. Header, setting,
    /// input-ingest and reset states fall back to single edges (they are
    /// a vanishing fraction of an inference); parameter sections ingest
    /// in bulk straight from the stream; processing sections delegate to
    /// [`Lpu::bulk_tick`]. Cycle counts, every [`NetPuStats`] /
    /// [`LpuStats`] field, sink timestamps and stream idle accounting
    /// match the tick path exactly.
    fn bulk_step(&mut self, cycle: Cycle, budget: Cycle) -> (Cycle, Tick) {
        let TopState::Sections { idx, entered } = self.state else {
            return self.single_step(cycle);
        };
        match self.sections[idx] {
            Section::Params(layer) => {
                if !entered {
                    // The first parameter edge also performs layer
                    // initialization; keep it on the reference path.
                    return self.single_step(cycle);
                }
                let id = self.lpu_of(layer);
                let k = self.lpus[id]
                    .param_words_remaining()
                    .min(self.stream.remaining())
                    .min(usize::try_from(budget).unwrap_or(usize::MAX));
                if k == 0 {
                    return self.single_step(cycle); // stalled on the DMA
                }
                // One word per cycle, every cycle consuming: no idle.
                let mut complete = false;
                for &w in self.stream.take_words(k) {
                    complete = self.lpus[id].ingest_param_word(w);
                }
                self.stats.param_cycles += cast::u64_from_usize(k);
                self.state = if complete {
                    TopState::Sections {
                        idx: idx + 1,
                        entered: false,
                    }
                } else {
                    TopState::Sections { idx, entered: true }
                };
                (cast::u64_from_usize(k), Tick::Progress)
            }
            Section::Process(layer) => {
                let id = self.lpu_of(layer);
                self.probe.set_layer(layer);
                let r = self.lpus[id].bulk_tick(
                    &mut self.stream,
                    cycle,
                    budget,
                    &mut self.tracer,
                    &mut self.probe,
                );
                self.stats.process_cycles += r.advanced;
                // Idle settlement: edges strictly between takes always
                // saw pending data; trailing edges only count when the
                // stream still holds words now.
                let between = r.advanced - r.words - r.tail;
                let trailing = if self.stream.exhausted() { 0 } else { r.tail };
                self.stream.add_idle_cycles(between + trailing);
                if self.lpus[id].is_done() {
                    self.route_layer_output(layer, cycle + r.advanced - 1);
                    if layer + 1 == self.settings.len() {
                        if self.stream.exhausted() {
                            self.state = TopState::Done;
                            return (r.advanced, Tick::Done);
                        }
                        self.lpus[id].reset();
                        self.settings.clear();
                        self.sections.clear();
                        self.pixels.clear();
                        self.state = TopState::Resetting {
                            idx: usize::MAX,
                            left: RESET_CYCLES,
                        };
                        return (r.advanced, Tick::Progress);
                    }
                    self.state = TopState::Resetting {
                        idx: idx + 1,
                        left: RESET_CYCLES,
                    };
                    self.lpus[id].reset();
                    return (r.advanced, Tick::Progress);
                }
                self.state = TopState::Sections { idx, entered: true };
                (r.advanced, r.tick)
            }
        }
    }
}

impl Clocked for NetPu {
    fn tick(&mut self, cycle: Cycle) -> Tick {
        let tick = match std::mem::replace(&mut self.state, TopState::Failed) {
            TopState::Header => {
                self.state = TopState::Header;
                match self.stream.take() {
                    Some(w) => {
                        self.stats.settings_cycles += 1;
                        if cast::lo16(w) != netpu_compiler::stream::MAGIC
                            || cast::lo8(w >> 16) != netpu_compiler::stream::VERSION
                        {
                            return self.fail(StreamError::BadHeader(w));
                        }
                        let n = cast::usize_sat(w >> 24 & 0xFFFF);
                        if n < 2 {
                            return self.fail(StreamError::BadLayerSequence);
                        }
                        // Packing flag (bit 40): dense streams need an
                        // instance generated with dense unpack logic.
                        self.packing = if w >> 40 & 1 == 1 {
                            PackingMode::Dense
                        } else {
                            PackingMode::Lanes8
                        };
                        if self.packing == PackingMode::Dense && !self.cfg.dense_weight_packing {
                            return self.fail(StreamError::PackingUnsupported);
                        }
                        self.settings.reserve(n);
                        self.sections = NetPu::build_sections(n);
                        self.state = TopState::Settings { idx: 0 };
                        Tick::Progress
                    }
                    None => Tick::Stall,
                }
            }
            TopState::Settings { idx } => {
                self.state = TopState::Settings { idx };
                match self.stream.take() {
                    Some(w) => {
                        self.stats.settings_cycles += 1;
                        let s = match LayerSetting::decode(w) {
                            Ok(s) => s,
                            Err(e) => return self.fail(StreamError::BadSetting(e)),
                        };
                        self.settings.push(s);
                        let n = self.sections.len() / 2;
                        if idx + 1 == n {
                            // Validate the layer sequence before relying
                            // on it structurally.
                            let ok = self.settings[0].layer_type == LayerType::Input
                                && self.settings[n - 1].layer_type == LayerType::Output
                                && self.settings[1..n - 1]
                                    .iter()
                                    .all(|s| s.layer_type == LayerType::Hidden);
                            if !ok {
                                return self.fail(StreamError::BadLayerSequence);
                            }
                            self.state = TopState::InputIngest { idx: 0 };
                        } else {
                            self.state = TopState::Settings { idx: idx + 1 };
                        }
                        Tick::Progress
                    }
                    None => Tick::Stall,
                }
            }
            TopState::InputIngest { idx } => {
                self.state = TopState::InputIngest { idx };
                match self.stream.take() {
                    Some(w) => {
                        self.stats.input_ingest_cycles += 1;
                        let len = cast::usize_from_u32(self.settings[0].neurons);
                        for i in 0..8 {
                            let p = 8 * idx + i;
                            if p < len {
                                self.pixels.push(i32::from(cast::lo8(w >> (8 * i))));
                            }
                        }
                        if idx + 1 == input_words(len) {
                            self.state = TopState::Sections {
                                idx: 0,
                                entered: false,
                            };
                        } else {
                            self.state = TopState::InputIngest { idx: idx + 1 };
                        }
                        Tick::Progress
                    }
                    None => Tick::Stall,
                }
            }
            TopState::Sections { idx, entered } => {
                match self.sections[idx] {
                    Section::Params(layer) => {
                        let id = self.lpu_of(layer);
                        if !entered {
                            if !self.lpus[id].is_idle() {
                                // The stream interleave guarantees the
                                // target LPU is free for L ≥ 2.
                                self.state = TopState::Sections { idx, entered };
                                return Tick::Stall;
                            }
                            let setting = self.settings[layer];
                            let expect = param_words(&setting);
                            self.lpus[id].begin_layer(setting, expect, self.packing);
                            self.tracer.record(cycle, "netpu", || {
                                format!("layer {layer} settings → lpu{id} ({expect} param words)")
                            });
                            if layer == 0 {
                                // The ingested pixels are consumed only
                                // by the first layer; hand them over
                                // instead of cloning (they are re-filled
                                // by the next inference's InputIngest).
                                self.lpus[id].set_inputs(std::mem::take(&mut self.pixels));
                            }
                            if expect == 0 {
                                self.state = TopState::Sections {
                                    idx: idx + 1,
                                    entered: false,
                                };
                                return Tick::Progress;
                            }
                        }
                        match self.stream.take() {
                            Some(w) => {
                                self.stats.param_cycles += 1;
                                let complete = self.lpus[id].ingest_param_word(w);
                                self.state = if complete {
                                    TopState::Sections {
                                        idx: idx + 1,
                                        entered: false,
                                    }
                                } else {
                                    TopState::Sections { idx, entered: true }
                                };
                                Tick::Progress
                            }
                            None => {
                                self.state = TopState::Sections { idx, entered: true };
                                Tick::Stall
                            }
                        }
                    }
                    Section::Process(layer) => {
                        let id = self.lpu_of(layer);
                        self.probe.set_layer(layer);
                        let t = self.lpus[id].tick(
                            &mut self.stream,
                            cycle,
                            &mut self.tracer,
                            &mut self.probe,
                        );
                        self.stats.process_cycles += 1;
                        if self.lpus[id].is_done() {
                            self.route_layer_output(layer, cycle);
                            if layer + 1 == self.settings.len() {
                                // Last layer of this inference. A
                                // pre-packaged burst may carry further
                                // complete loadables: re-initialise from
                                // the next header instead of halting.
                                if self.stream.exhausted() {
                                    self.state = TopState::Done;
                                    return Tick::Done;
                                }
                                self.lpus[id].reset();
                                self.settings.clear();
                                self.sections.clear();
                                self.pixels.clear();
                                self.state = TopState::Resetting {
                                    idx: usize::MAX, // sentinel: restart at Header
                                    left: RESET_CYCLES,
                                };
                                return Tick::Progress;
                            }
                            self.state = TopState::Resetting {
                                idx: idx + 1,
                                left: RESET_CYCLES,
                            };
                            // The lpu id is reset during Resetting.
                            self.lpus[id].reset();
                            return Tick::Progress;
                        }
                        self.state = TopState::Sections { idx, entered: true };
                        t
                    }
                }
            }
            TopState::Resetting { idx, left } => {
                self.stats.reset_cycles += 1;
                self.state = if left > 1 {
                    TopState::Resetting {
                        idx,
                        left: left - 1,
                    }
                } else if idx == usize::MAX {
                    TopState::Header
                } else {
                    TopState::Sections {
                        idx,
                        entered: false,
                    }
                };
                Tick::Progress
            }
            TopState::Done => {
                self.state = TopState::Done;
                Tick::Done
            }
            TopState::Failed => Tick::Done,
        };
        tick
    }
}

/// A completed inference with its timing breakdown.
#[derive(Clone, Debug, PartialEq)]
pub struct InferenceRun {
    /// Predicted class.
    pub class: usize,
    /// Winning MaxOut score.
    pub score: Fix,
    /// Total clock cycles from first stream word to result.
    pub cycles: Cycle,
    /// Latency in microseconds at the configured clock.
    pub latency_us: f64,
    /// SoftMax probabilities (instances with `softmax_output` only).
    pub probabilities: Option<Vec<f64>>,
    /// Cycle breakdown.
    pub stats: NetPuStats,
}

/// Convenience driver: streams a compiled loadable through a fresh
/// NetPU instance at full bandwidth (one word per cycle) and runs it to
/// completion.
///
/// ```
/// use netpu_core::{netpu::run_inference, HwConfig};
/// use netpu_nn::{export::BnMode, reference, zoo::ZooModel};
/// let model = ZooModel::TfcW1A1.build_untrained(1, BnMode::Folded).unwrap();
/// let pixels = vec![100u8; 784];
/// let loadable = netpu_compiler::compile(&model, &pixels).unwrap();
/// let run = run_inference(&HwConfig::paper_instance(), loadable.words).unwrap();
/// // The cycle model is bit-exact against the software reference.
/// assert_eq!(run.class, reference::infer(&model, &pixels));
/// assert!(run.latency_us > 0.0);
/// ```
pub fn run_inference(cfg: &HwConfig, words: Vec<u64>) -> Result<InferenceRun, NetPuError> {
    let stream = StreamSource::new(words, 1);
    let mut netpu = NetPu::new(*cfg, stream)?;
    let cycles = run_to_completion(&mut netpu)?;
    finish_run(&netpu, cycles, cfg)
}

/// [`run_inference`] on the phase-skipping fast path: identical results
/// (class, score, cycle count and the full [`NetPuStats`] breakdown) at
/// a fraction of the wall-clock cost. The equivalence is enforced by the
/// `fast_path` differential test suite.
pub fn run_inference_fast(cfg: &HwConfig, words: Vec<u64>) -> Result<InferenceRun, NetPuError> {
    let stream = StreamSource::new(words, 1);
    let mut netpu = NetPu::new(*cfg, stream)?;
    let cycles = run_to_completion_fast(&mut netpu)?;
    finish_run(&netpu, cycles, cfg)
}

/// [`run_inference_fast`] with a caller-supplied per-run [`Tracer`].
///
/// The tracer is moved into the instance for the run and handed back
/// through the `&mut` slot afterwards — *including on errors*, so a
/// serving layer can attach a bounded trace to a request, stream it,
/// and inspect the datapath events of a failed attempt. Pass
/// `Tracer::disabled()` for a zero-cost no-op hook.
pub fn run_inference_hooked(
    cfg: &HwConfig,
    words: Vec<u64>,
    tracer: &mut Tracer,
) -> Result<InferenceRun, NetPuError> {
    let stream = StreamSource::new(words, 1);
    let mut netpu = NetPu::new(*cfg, stream)?.with_tracer(std::mem::take(tracer));
    let outcome = run_to_completion_fast(&mut netpu);
    *tracer = netpu.take_tracer();
    let cycles = outcome?;
    finish_run(&netpu, cycles, cfg)
}

/// [`run_inference_fast`] with a caller-supplied [`DatapathProbe`]
/// recording every intermediate accumulator / BN / level / score value.
///
/// Same hand-off contract as [`run_inference_hooked`]: the probe is
/// moved into the instance for the run and handed back through the
/// `&mut` slot afterwards, including on errors. The `netpu-check`
/// soundness suite replays probed runs against the abstract
/// interpreter's predicted intervals.
pub fn run_inference_probed(
    cfg: &HwConfig,
    words: Vec<u64>,
    probe: &mut DatapathProbe,
) -> Result<InferenceRun, NetPuError> {
    let stream = StreamSource::new(words, 1);
    let mut netpu = NetPu::new(*cfg, stream)?.with_probe(std::mem::take(probe));
    let outcome = run_to_completion_fast(&mut netpu);
    *probe = netpu.take_probe();
    let cycles = outcome?;
    finish_run(&netpu, cycles, cfg)
}

/// [`run_inference_fast`] with *both* observation hooks attached in a
/// single simulation: a [`Tracer`] for component events and a
/// [`DatapathProbe`] for intermediate values. This is the path the
/// runtime's `TraceSink` forwarding uses — one run feeds both event
/// families into a recorded trace without a second simulation.
///
/// Same hand-off contract as [`run_inference_hooked`]: both hooks are
/// moved in for the run and handed back through their `&mut` slots
/// afterwards, including on errors.
pub fn run_inference_observed(
    cfg: &HwConfig,
    words: Vec<u64>,
    tracer: &mut Tracer,
    probe: &mut DatapathProbe,
) -> Result<InferenceRun, NetPuError> {
    let stream = StreamSource::new(words, 1);
    let mut netpu = NetPu::new(*cfg, stream)?
        .with_tracer(std::mem::take(tracer))
        .with_probe(std::mem::take(probe));
    let outcome = run_to_completion_fast(&mut netpu);
    *tracer = netpu.take_tracer();
    *probe = netpu.take_probe();
    let cycles = outcome?;
    finish_run(&netpu, cycles, cfg)
}

fn finish_run(netpu: &NetPu, cycles: Cycle, cfg: &HwConfig) -> Result<InferenceRun, NetPuError> {
    let Some((class, score)) = netpu.result() else {
        return Err(NetPuError::Incomplete);
    };
    Ok(InferenceRun {
        class,
        score,
        cycles,
        latency_us: netpu_sim::cycles_to_us(cycles, cfg.clock_mhz),
        probabilities: netpu.probabilities(),
        stats: netpu.stats.clone(),
    })
}

/// Runs a prepared NetPU to completion, surfacing stream errors.
pub fn run_to_completion(netpu: &mut NetPu) -> Result<Cycle, NetPuError> {
    // Advance stream bandwidth bookkeeping alongside the clock.
    struct WithStream<'a>(&'a mut NetPu);
    impl Clocked for WithStream<'_> {
        fn tick(&mut self, cycle: Cycle) -> Tick {
            let t = self.0.tick(cycle);
            self.0.stream.next_cycle();
            t
        }
    }
    let cycles = Simulator::new()
        .run(&mut WithStream(netpu))
        .map_err(NetPuError::Sim)?;
    if let Some(e) = netpu.error.clone() {
        return Err(NetPuError::Stream(e));
    }
    Ok(cycles)
}

/// [`run_to_completion`] on the phase-skipping fast path
/// ([`netpu_sim::engine::BulkClocked`]); cycle-exact with the tick path
/// including deadlock timing and stream idle accounting.
pub fn run_to_completion_fast(netpu: &mut NetPu) -> Result<Cycle, NetPuError> {
    // Stream bookkeeping is folded into `bulk_step` itself (metered on
    // the single-step fallback, closed-form on the bulk paths).
    struct Fast<'a>(&'a mut NetPu);
    impl Clocked for Fast<'_> {
        fn tick(&mut self, cycle: Cycle) -> Tick {
            let (_, t) = self.0.single_step(cycle);
            t
        }
    }
    impl BulkClocked for Fast<'_> {
        fn bulk_tick(&mut self, cycle: Cycle, budget: Cycle) -> (Cycle, Tick) {
            self.0.bulk_step(cycle, budget)
        }
    }
    let cycles = Simulator::new()
        .run_fast(&mut Fast(netpu))
        .map_err(NetPuError::Sim)?;
    if let Some(e) = netpu.error.clone() {
        return Err(NetPuError::Stream(e));
    }
    Ok(cycles)
}
