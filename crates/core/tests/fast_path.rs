//! Differential tests for the phase-skipping fast path: for every zoo
//! model × BN mode × weight-buffering × packing combination,
//! `run_inference_fast` must agree with the reference tick path on the
//! cycle count, the classification, and **every** `NetPuStats` /
//! `LpuStats` field — the fast path is an optimization of the clock
//! loop, not of the timing model.

use netpu_compiler::{batch_stream, compile_packed, PackingMode};
use netpu_core::netpu::{run_to_completion, run_to_completion_fast};
use netpu_core::{run_inference, run_inference_fast, HwConfig, NetPu, NetPuError};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{dataset, reference};
use netpu_sim::{SimError, StreamSource};

fn config(double_buffered: bool, packing: PackingMode) -> HwConfig {
    HwConfig {
        double_buffered_weights: double_buffered,
        dense_weight_packing: packing == PackingMode::Dense,
        ..HwConfig::paper_instance()
    }
}

/// The full sweep the issue demands. Each combination runs the same
/// loadable through both paths and compares the whole `InferenceRun`
/// (class, score, cycles, latency, probabilities, and the per-layer
/// stats breakdown) for structural equality.
#[test]
fn fast_path_is_cycle_exact_across_the_zoo() {
    let pixels: Vec<u8> = (0..784).map(|i| (i * 7 % 251) as u8).collect();
    for model_kind in ZooModel::ALL {
        for bn in [BnMode::Folded, BnMode::Hardware] {
            let model = model_kind.build_untrained(11, bn).unwrap();
            for packing in [PackingMode::Lanes8, PackingMode::Dense] {
                let loadable = compile_packed(&model, &pixels, packing).unwrap();
                for double_buffered in [false, true] {
                    let cfg = config(double_buffered, packing);
                    let tick = run_inference(&cfg, loadable.words.clone()).unwrap();
                    let fast = run_inference_fast(&cfg, loadable.words.clone()).unwrap();
                    assert_eq!(
                        tick, fast,
                        "{model_kind:?} {bn:?} {packing:?} db={double_buffered}"
                    );
                    // And both remain bit-exact against the software
                    // reference.
                    assert_eq!(fast.class, reference::infer(&model, &pixels));
                }
            }
        }
    }
}

/// SoftMax-enabled instances exercise the extra write-out and sink
/// traffic; the probability vector must match too.
#[test]
fn fast_path_matches_with_softmax_output() {
    let model = ZooModel::TfcW2A2
        .build_untrained(3, BnMode::Hardware)
        .unwrap();
    let pixels = vec![77u8; 784];
    let words = netpu_compiler::compile(&model, &pixels).unwrap().words;
    let cfg = HwConfig {
        softmax_output: true,
        ..HwConfig::paper_instance()
    };
    let tick = run_inference(&cfg, words.clone()).unwrap();
    let fast = run_inference_fast(&cfg, words).unwrap();
    assert_eq!(tick, fast);
    assert!(fast.probabilities.is_some());
}

/// Multi-inference bursts re-enter the header path between frames; the
/// fast path must reproduce per-frame completion cycles, the Network
/// Output FIFO word-for-word (including arrival timestamps), and the
/// stream's idle-cycle accounting.
#[test]
fn fast_path_matches_burst_streams_and_idle_accounting() {
    let model = ZooModel::SfcW1A1
        .build_untrained(6, BnMode::Folded)
        .unwrap();
    let ds = dataset::generate(4, 21, &dataset::GeneratorConfig::default());
    let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
    let words = batch_stream(&model, &inputs, PackingMode::Lanes8).unwrap();
    let cfg = HwConfig::paper_instance();

    let mut tick = NetPu::new(cfg, StreamSource::new(words.clone(), 1)).unwrap();
    let tick_cycles = run_to_completion(&mut tick).unwrap();
    let mut fast = NetPu::new(cfg, StreamSource::new(words, 1)).unwrap();
    let fast_cycles = run_to_completion_fast(&mut fast).unwrap();

    assert_eq!(tick_cycles, fast_cycles);
    assert_eq!(tick.results(), fast.results());
    assert_eq!(tick.stats, fast.stats);
    assert_eq!(tick.sink().timed_words(), fast.sink().timed_words());
    assert_eq!(tick.stream_idle_cycles(), fast.stream_idle_cycles());
}

/// A truncated stream starves the active LPU mid-weights; the deadlock
/// watchdog must fire at the identical cycle on both paths.
#[test]
fn fast_path_preserves_deadlock_watchdog_timing() {
    let model = ZooModel::TfcW1A1
        .build_untrained(8, BnMode::Folded)
        .unwrap();
    let pixels = vec![13u8; 784];
    let mut words = netpu_compiler::compile(&model, &pixels).unwrap().words;
    words.truncate(words.len() - 40); // starve the last weight section

    let tick_err = run_inference(&HwConfig::paper_instance(), words.clone()).unwrap_err();
    let fast_err = run_inference_fast(&HwConfig::paper_instance(), words).unwrap_err();
    assert_eq!(tick_err, fast_err);
    assert!(
        matches!(
            tick_err,
            NetPuError::Sim(SimError::Deadlock {
                window: 100_000,
                ..
            })
        ),
        "expected a deadlock, got {tick_err:?}"
    );
}

/// Malformed streams must fail identically (same `StreamError`) on both
/// paths — the fast path single-steps the control states that validate.
#[test]
fn fast_path_surfaces_identical_stream_errors() {
    let bad_header = vec![0xDEAD_BEEF_u64; 4];
    let tick_err = run_inference(&HwConfig::paper_instance(), bad_header.clone()).unwrap_err();
    let fast_err = run_inference_fast(&HwConfig::paper_instance(), bad_header).unwrap_err();
    assert_eq!(tick_err, fast_err);
    assert!(matches!(tick_err, NetPuError::Stream(_)));
}
