//! Multi-inference burst streaming: the host pre-packages several
//! complete loadables back to back; the NetPU re-initialises from each
//! header and classifies every frame.

use netpu_compiler::{batch_stream, PackingMode};
use netpu_core::netpu::run_to_completion;
use netpu_core::{HwConfig, NetPu};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{dataset, reference};
use netpu_sim::StreamSource;

#[test]
fn burst_classifies_every_frame() {
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let ds = dataset::generate(5, 9, &dataset::GeneratorConfig::default());
    let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
    let words = batch_stream(&model, &inputs, PackingMode::Lanes8).unwrap();
    let mut netpu = NetPu::new(HwConfig::paper_instance(), StreamSource::new(words, 1)).unwrap();
    run_to_completion(&mut netpu).unwrap();
    let results = netpu.results();
    assert_eq!(results.len(), 5);
    for ((class, _, _), e) in results.iter().zip(&ds.examples) {
        assert_eq!(*class, reference::infer(&model, &e.pixels));
    }
    // Completion cycles are strictly increasing.
    assert!(results.windows(2).all(|w| w[0].2 < w[1].2));
    // One result word per frame in the Network Output FIFO.
    assert_eq!(netpu.sink().len(), 5);
}

#[test]
fn sustained_rate_matches_single_frame_latency() {
    // NetPU-M re-streams everything per inference, so a burst's
    // steady-state spacing equals single-frame latency plus the small
    // re-initialisation overhead — there is no cross-frame pipelining
    // to exploit (unlike FINN's streaming pipeline).
    let model = ZooModel::TfcW2A2
        .build_untrained(2, BnMode::Folded)
        .unwrap();
    let px = vec![90u8; 784];
    let single = netpu_core::netpu::run_inference(
        &HwConfig::paper_instance(),
        netpu_compiler::compile(&model, &px).unwrap().words,
    )
    .unwrap()
    .cycles;
    let n = 4u64;
    let words = batch_stream(&model, &vec![px; n as usize], PackingMode::Lanes8).unwrap();
    let mut netpu = NetPu::new(HwConfig::paper_instance(), StreamSource::new(words, 1)).unwrap();
    let total = run_to_completion(&mut netpu).unwrap();
    assert_eq!(netpu.results().len() as u64, n);
    let per_frame = total as f64 / n as f64;
    let ratio = per_frame / single as f64;
    assert!(
        (0.99..1.02).contains(&ratio),
        "burst per-frame {per_frame} vs single {single}"
    );
}

#[test]
fn empty_batch_is_empty_stream() {
    let model = ZooModel::TfcW1A1
        .build_untrained(3, BnMode::Folded)
        .unwrap();
    assert!(batch_stream(&model, &[], PackingMode::Lanes8)
        .unwrap()
        .is_empty());
}

#[test]
fn dense_bursts_work_too() {
    let cfg = HwConfig {
        dense_weight_packing: true,
        ..HwConfig::paper_instance()
    };
    let model = ZooModel::TfcW2A2
        .build_untrained(4, BnMode::Folded)
        .unwrap();
    let ds = dataset::generate(3, 2, &dataset::GeneratorConfig::default());
    let inputs: Vec<Vec<u8>> = ds.examples.iter().map(|e| e.pixels.clone()).collect();
    let words = batch_stream(&model, &inputs, PackingMode::Dense).unwrap();
    let mut netpu = NetPu::new(cfg, StreamSource::new(words, 1)).unwrap();
    run_to_completion(&mut netpu).unwrap();
    for ((class, _, _), e) in netpu.results().iter().zip(&ds.examples) {
        assert_eq!(*class, reference::infer(&model, &e.pixels));
    }
}
