//! Tests of the §V multi-channel dense weight packing extension:
//! correctness (bit-exact against the reference through the dense wire
//! format), the latency interaction with the weight-stream bottleneck,
//! and rejection on instances without dense unpack logic.

use netpu_compiler::{compile_packed, decode, PackingMode, StreamError};
use netpu_core::netpu::run_inference;
use netpu_core::{HwConfig, NetPuError};
use netpu_nn::export::BnMode;
use netpu_nn::reference;
use netpu_nn::zoo::ZooModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dense_cfg() -> HwConfig {
    HwConfig {
        dense_weight_packing: true,
        ..HwConfig::paper_instance()
    }
}

fn pixels(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..784).map(|_| rng.gen()).collect()
}

#[test]
fn dense_roundtrip_preserves_the_model() {
    for zm in [ZooModel::TfcW2A2, ZooModel::LfcW1A2] {
        let mut model = zm.build_untrained(3, BnMode::Folded).unwrap();
        let px = pixels(1);
        let loadable = compile_packed(&model, &px, PackingMode::Dense).unwrap();
        let decoded = decode(&loadable.words).unwrap();
        assert_eq!(decoded.packing, PackingMode::Dense);
        model.name = String::new();
        assert_eq!(decoded.model, model);
        assert_eq!(decoded.pixels, px);
    }
}

#[test]
fn dense_stream_is_smaller_for_low_precision() {
    let model = ZooModel::TfcW2A2
        .build_untrained(3, BnMode::Folded)
        .unwrap();
    let px = pixels(2);
    let lanes = compile_packed(&model, &px, PackingMode::Lanes8).unwrap();
    let dense = compile_packed(&model, &px, PackingMode::Dense).unwrap();
    // 2-bit weights: weight sections shrink ~4x; the whole stream is
    // weight-dominated so it shrinks close to that.
    assert!(
        (lanes.len() as f64 / dense.len() as f64) > 2.5,
        "{} vs {}",
        lanes.len(),
        dense.len()
    );
}

#[test]
fn dense_inference_is_bit_exact() {
    let cfg = dense_cfg();
    for zm in [ZooModel::TfcW2A2, ZooModel::LfcW1A2] {
        let model = zm.build_untrained(4, BnMode::Folded).unwrap();
        for seed in 0..3u64 {
            let px = pixels(seed);
            let words = compile_packed(&model, &px, PackingMode::Dense)
                .unwrap()
                .words;
            let run = run_inference(&cfg, words).unwrap();
            let trace = reference::infer_traced(&model, &px);
            assert_eq!(run.class, trace.class, "{zm} seed {seed}");
            assert_eq!(run.score, trace.scores[trace.class]);
        }
    }
}

#[test]
fn binary_weight_models_gain_most_from_dense_packing() {
    // LFC-w1a2's 1-bit weights pack 64/word instead of 8/word.
    let cfg = dense_cfg();
    let model = ZooModel::TfcW2A2
        .build_untrained(5, BnMode::Folded)
        .unwrap();
    let px = pixels(3);
    let lanes_run = run_inference(
        &cfg,
        compile_packed(&model, &px, PackingMode::Lanes8)
            .unwrap()
            .words,
    )
    .unwrap();
    let dense_run = run_inference(
        &cfg,
        compile_packed(&model, &px, PackingMode::Dense)
            .unwrap()
            .words,
    )
    .unwrap();
    assert_eq!(lanes_run.class, dense_run.class);
    let speedup = lanes_run.cycles as f64 / dense_run.cycles as f64;
    // 2-bit dense carries 32 weights/word but only 8 multiplier lanes:
    // per word 1 ingest + 4 dispatch groups = 5 cycles for 32 weights
    // vs 2 cycles for 8 — a ~1.6x win, NOT the naive 4x. The stream
    // shrinks 4x; compute becomes the new bottleneck.
    assert!(
        (1.3..2.2).contains(&speedup),
        "dense speedup {speedup} ({} vs {} cycles)",
        lanes_run.cycles,
        dense_run.cycles
    );
}

#[test]
fn dense_plus_double_buffering_is_compute_bound() {
    // With double buffering, lane packing already reaches one word (8
    // weights) per cycle = the multiplier limit; dense packing cannot
    // beat the multiplier array, so the two configurations converge.
    let model = ZooModel::TfcW2A2
        .build_untrained(6, BnMode::Folded)
        .unwrap();
    let px = pixels(4);
    let db = HwConfig {
        double_buffered_weights: true,
        dense_weight_packing: true,
        ..HwConfig::paper_instance()
    };
    let lanes = run_inference(
        &db,
        compile_packed(&model, &px, PackingMode::Lanes8)
            .unwrap()
            .words,
    )
    .unwrap()
    .cycles;
    let dense = run_inference(
        &db,
        compile_packed(&model, &px, PackingMode::Dense)
            .unwrap()
            .words,
    )
    .unwrap()
    .cycles;
    let ratio = lanes as f64 / dense as f64;
    assert!(
        (0.9..1.15).contains(&ratio),
        "expected convergence, got {lanes} vs {dense}"
    );
}

#[test]
fn instances_without_dense_logic_reject_dense_streams() {
    let model = ZooModel::TfcW2A2
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let px = pixels(5);
    let words = compile_packed(&model, &px, PackingMode::Dense)
        .unwrap()
        .words;
    match run_inference(&HwConfig::paper_instance(), words) {
        Err(NetPuError::Stream(StreamError::PackingUnsupported)) => {}
        other => panic!("expected PackingUnsupported, got {other:?}"),
    }
}

#[test]
fn dense_instances_still_accept_lane_streams() {
    let model = ZooModel::TfcW2A2
        .build_untrained(8, BnMode::Folded)
        .unwrap();
    let px = pixels(6);
    let words = compile_packed(&model, &px, PackingMode::Lanes8)
        .unwrap()
        .words;
    let run = run_inference(&dense_cfg(), words).unwrap();
    assert_eq!(run.class, reference::infer(&model, &px));
}

#[test]
fn odd_precisions_fall_back_to_lanes() {
    use netpu_arith::{ActivationKind, Precision};
    use netpu_compiler::stream::{weight_field_bits, weights_per_word};
    use netpu_compiler::{LayerSetting, LayerType};
    let mk = |bits: u8| LayerSetting {
        layer_type: LayerType::Hidden,
        activation: ActivationKind::MultiThreshold,
        bn_folded: true,
        in_precision: Precision::W4,
        weight_precision: Precision::new(bits).unwrap(),
        out_precision: Precision::W4,
        neurons: 4,
        input_len: 16,
    };
    // 3-bit doesn't divide 8: falls back to 8-bit lanes even in Dense.
    assert_eq!(weight_field_bits(&mk(3), PackingMode::Dense), 8);
    assert_eq!(weights_per_word(&mk(3), PackingMode::Dense), 8);
    // 1/2/4/8 pack natively.
    assert_eq!(weights_per_word(&mk(1), PackingMode::Dense), 64);
    assert_eq!(weights_per_word(&mk(2), PackingMode::Dense), 32);
    assert_eq!(weights_per_word(&mk(4), PackingMode::Dense), 16);
    assert_eq!(weights_per_word(&mk(8), PackingMode::Dense), 8);
}
