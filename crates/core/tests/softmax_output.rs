//! Tests of the SoftMax output extension (§III.B.1 future work).

use netpu_core::netpu::run_inference;
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::reference;
use netpu_nn::zoo::ZooModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn softmax_cfg() -> HwConfig {
    HwConfig {
        softmax_output: true,
        ..HwConfig::paper_instance()
    }
}

fn pixels(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..784).map(|_| rng.gen()).collect()
}

#[test]
fn probabilities_are_a_distribution_and_agree_with_maxout() {
    let model = ZooModel::TfcW2A2
        .build_untrained(3, BnMode::Folded)
        .unwrap();
    for seed in 0..4u64 {
        let px = pixels(seed);
        let words = netpu_compiler::compile(&model, &px).unwrap().words;
        let run = run_inference(&softmax_cfg(), words).unwrap();
        let probs = run.probabilities.as_ref().expect("softmax enabled");
        assert_eq!(probs.len(), 10);
        let sum: f64 = probs.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        // The MaxOut winner carries maximal probability (exp is
        // monotone; ties share the maximum, so compare ≥ rather than
        // demanding a unique argmax).
        assert!(
            probs.iter().all(|&p| p <= probs[run.class] + 1e-12),
            "class {} prob {} not maximal in {probs:?}",
            run.class,
            probs[run.class]
        );
        assert_eq!(run.class, reference::infer(&model, &px));
    }
}

#[test]
fn default_instance_reports_no_probabilities() {
    let model = ZooModel::TfcW1A1
        .build_untrained(4, BnMode::Folded)
        .unwrap();
    let words = netpu_compiler::compile(&model, &pixels(0)).unwrap().words;
    let run = run_inference(&HwConfig::paper_instance(), words).unwrap();
    assert!(run.probabilities.is_none());
}

#[test]
fn softmax_unit_streams_one_word_per_class() {
    let model = ZooModel::TfcW1A1
        .build_untrained(5, BnMode::Folded)
        .unwrap();
    let px = pixels(1);
    let words = netpu_compiler::compile(&model, &px).unwrap().words;
    let stream = netpu_sim::StreamSource::new(words, 1);
    let mut netpu = netpu_core::NetPu::new(softmax_cfg(), stream).unwrap();
    netpu_core::netpu::run_to_completion(&mut netpu).unwrap();
    // 1 MaxOut word + 10 per-class exponential words.
    assert_eq!(netpu.sink().len(), 11);
    assert_eq!(netpu.scores().len(), 10);
    // The exponential words decode to the probabilities (after host
    // normalisation).
    let words: Vec<u64> = netpu.sink().words().collect();
    let exps: Vec<u64> = words[1..].iter().map(|w| w >> 32).collect();
    let sum: u64 = exps.iter().sum();
    assert!(sum > 0);
    let probs = netpu.probabilities().unwrap();
    for (e, p) in exps.iter().zip(&probs) {
        assert!((*e as f64 / sum as f64 - p).abs() < 1e-9);
    }
}

#[test]
fn softmax_costs_extra_output_cycles() {
    let model = ZooModel::TfcW1A1
        .build_untrained(6, BnMode::Folded)
        .unwrap();
    let px = pixels(2);
    let words = netpu_compiler::compile(&model, &px).unwrap().words;
    let plain = run_inference(&HwConfig::paper_instance(), words.clone()).unwrap();
    let soft = run_inference(&softmax_cfg(), words).unwrap();
    // Ten extra exp cycles on the output layer, nothing else.
    assert!(soft.cycles > plain.cycles);
    assert!(
        soft.cycles - plain.cycles <= 16,
        "{} vs {}",
        soft.cycles,
        plain.cycles
    );
    assert_eq!(soft.class, plain.class);
}
