//! Negative-path tests: API misuse must fail loudly and invalid
//! configurations must be rejected before any simulation starts.

use netpu_arith::Precision;
use netpu_compiler::{LayerSetting, LayerType, PackingMode};
use netpu_core::lpu::Lpu;
use netpu_core::tnpu::{LayerCfg, NeuronActivation, NeuronParams, Tnpu};
use netpu_core::{ConfigError, HwConfig, NetPu, NetPuError};
use netpu_sim::StreamSource;

fn hidden_setting() -> LayerSetting {
    LayerSetting {
        layer_type: LayerType::Hidden,
        activation: netpu_arith::ActivationKind::Sign,
        bn_folded: true,
        in_precision: Precision::W1,
        weight_precision: Precision::W1,
        out_precision: Precision::W1,
        neurons: 4,
        input_len: 8,
    }
}

#[test]
fn netpu_rejects_invalid_configs_up_front() {
    let bad = HwConfig {
        lpus: 1,
        ..HwConfig::paper_instance()
    };
    match NetPu::new(bad, StreamSource::new(vec![], 1)) {
        Err(NetPuError::Config(ConfigError::TooFewLpus(1))) => {}
        other => panic!("expected config rejection, got {other:?}"),
    }
}

#[test]
#[should_panic(expected = "must be reset first")]
fn lpu_rejects_double_layer_initialization() {
    let cfg = HwConfig::paper_instance();
    let mut lpu = Lpu::new(0, &cfg);
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
}

#[test]
#[should_panic(expected = "not awaiting parameters")]
fn lpu_rejects_unexpected_param_words() {
    let cfg = HwConfig::paper_instance();
    let mut lpu = Lpu::new(0, &cfg);
    lpu.ingest_param_word(0);
}

#[test]
#[should_panic(expected = "input length")]
fn lpu_rejects_wrong_input_length() {
    let cfg = HwConfig::paper_instance();
    let mut lpu = Lpu::new(0, &cfg);
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
    lpu.set_inputs(vec![1; 3]); // fan-in is 8
}

#[test]
#[should_panic(expected = "not done")]
fn lpu_rejects_early_output_collection() {
    let cfg = HwConfig::paper_instance();
    let mut lpu = Lpu::new(0, &cfg);
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
    let _ = lpu.take_output();
}

#[test]
#[should_panic(expected = "configure_layer first")]
fn tnpu_rejects_neuron_load_before_layer() {
    let mut t = Tnpu::new(8);
    t.load_neuron(NeuronParams {
        bias: Some(0),
        bn: None,
        activation: NeuronActivation::Sign(netpu_arith::Fix::ZERO),
    });
}

#[test]
#[should_panic(expected = "multiplier lanes")]
fn tnpu_rejects_invalid_lane_count() {
    let _ = Tnpu::new(0);
}

#[test]
fn lpu_reset_returns_to_idle() {
    let cfg = HwConfig::paper_instance();
    let mut lpu = Lpu::new(0, &cfg);
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
    assert!(!lpu.is_idle());
    lpu.reset();
    assert!(lpu.is_idle());
    // A reset LPU accepts a fresh layer.
    lpu.begin_layer(hidden_setting(), 4, PackingMode::Lanes8);
    assert!(!lpu.is_idle());
}

#[test]
fn tnpu_layer_cfg_reports_xnor_pairing() {
    let xnor = LayerCfg {
        layer_type: LayerType::Hidden,
        in_precision: Precision::W1,
        weight_precision: Precision::W1,
        out_precision: Precision::W1,
    };
    assert!(xnor.uses_xnor());
    let promoted = LayerCfg {
        in_precision: Precision::W2,
        ..xnor
    };
    assert!(!promoted.uses_xnor());
}
