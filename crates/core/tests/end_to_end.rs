//! End-to-end accelerator tests: bit-exactness against the software
//! reference and structural latency properties.

use netpu_core::netpu::run_inference;
use netpu_core::{HwConfig, NetPuError};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_nn::{dataset, reference};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pixels(seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..dataset::IMAGE_PIXELS).map(|_| rng.gen()).collect()
}

/// The accelerator must agree with the bit-exact reference on class and
/// score for every model shape and BN mode.
#[test]
fn netpu_is_bit_exact_against_reference() {
    let cfg = HwConfig::paper_instance();
    for bn_mode in [BnMode::Folded, BnMode::Hardware] {
        for model_kind in [ZooModel::TfcW1A1, ZooModel::TfcW2A2] {
            let model = model_kind.build_untrained(11, bn_mode).unwrap();
            for seed in 0..5u64 {
                let px = pixels(seed);
                let loadable = netpu_compiler::compile(&model, &px).unwrap();
                let run = run_inference(&cfg, loadable.words).unwrap();
                let trace = reference::infer_traced(&model, &px);
                assert_eq!(
                    run.class, trace.class,
                    "{model_kind} {bn_mode:?} seed {seed}"
                );
                assert_eq!(
                    run.score, trace.scores[trace.class],
                    "{model_kind} {bn_mode:?} seed {seed} score"
                );
            }
        }
    }
}

/// A trained model keeps its accuracy when run through the accelerator.
#[test]
fn netpu_matches_reference_on_trained_model() {
    let (train_ds, test_ds) = dataset::easy_splits(400, 30, 5);
    let (_, model) = ZooModel::TfcW1A1
        .train(
            &train_ds,
            &netpu_nn::train::TrainConfig {
                epochs: 4,
                ..Default::default()
            },
            BnMode::Folded,
        )
        .unwrap();
    let cfg = HwConfig::paper_instance();
    for e in &test_ds.examples {
        let loadable = netpu_compiler::compile(&model, &e.pixels).unwrap();
        let run = run_inference(&cfg, loadable.words).unwrap();
        assert_eq!(run.class, reference::infer(&model, &e.pixels));
    }
}

/// Table V structure: latency ordering TFC < SFC, and binary (Sign)
/// models run ~4-8x faster than 2-bit models of the same topology
/// because 1-bit weights pack 8 channels per stream lane.
#[test]
fn latency_reflects_weight_stream_density() {
    let cfg = HwConfig::paper_instance();
    let px = pixels(1);
    let mut latency = std::collections::HashMap::new();
    for m in [ZooModel::TfcW1A1, ZooModel::TfcW2A2, ZooModel::SfcW1A1] {
        let model = m.build_untrained(3, BnMode::Folded).unwrap();
        let loadable = netpu_compiler::compile(&model, &px).unwrap();
        let run = run_inference(&cfg, loadable.words).unwrap();
        latency.insert(m, run.cycles);
    }
    let tfc_bin = latency[&ZooModel::TfcW1A1];
    let tfc_2b = latency[&ZooModel::TfcW2A2];
    let sfc_bin = latency[&ZooModel::SfcW1A1];
    assert!(tfc_bin < tfc_2b, "binary {tfc_bin} !< 2-bit {tfc_2b}");
    let speedup = tfc_2b as f64 / tfc_bin as f64;
    assert!(
        (2.5..9.0).contains(&speedup),
        "binary speedup {speedup} outside the Table V band"
    );
    assert!(sfc_bin > tfc_bin * 3, "SFC should be much slower than TFC");
}

/// Table V structure: folding BN into thresholds is slightly faster
/// than hardware BN (the BN parameter section streams one word per
/// neuron instead of one bias word per eight neurons).
#[test]
fn bn_folding_speeds_up_inference() {
    let cfg = HwConfig::paper_instance();
    let px = pixels(2);
    let folded = {
        let m = ZooModel::TfcW2A2
            .build_untrained(4, BnMode::Folded)
            .unwrap();
        run_inference(&cfg, netpu_compiler::compile(&m, &px).unwrap().words)
            .unwrap()
            .cycles
    };
    let hardware = {
        let m = ZooModel::TfcW2A2
            .build_untrained(4, BnMode::Hardware)
            .unwrap();
        run_inference(&cfg, netpu_compiler::compile(&m, &px).unwrap().words)
            .unwrap()
            .cycles
    };
    assert!(folded < hardware, "folded {folded} !< hardware {hardware}");
    // The gap is small (Table V: ~1-3%).
    let ratio = hardware as f64 / folded as f64;
    assert!(ratio < 1.15, "BN-fold gap too large: {ratio}");
}

/// §V future work: double-buffering the weight buffer roughly halves
/// the weight-bound latency.
#[test]
fn double_buffering_ablation() {
    let px = pixels(3);
    let model = ZooModel::SfcW1A1
        .build_untrained(5, BnMode::Folded)
        .unwrap();
    let words = netpu_compiler::compile(&model, &px).unwrap().words;
    let single = run_inference(&HwConfig::paper_instance(), words.clone())
        .unwrap()
        .cycles;
    let double = run_inference(
        &HwConfig {
            double_buffered_weights: true,
            ..HwConfig::paper_instance()
        },
        words,
    )
    .unwrap()
    .cycles;
    assert!(double < single);
    let ratio = single as f64 / double as f64;
    assert!((1.3..2.1).contains(&ratio), "double-buffer speedup {ratio}");
}

/// More TNPUs per LPU reduce per-batch overheads but cannot beat the
/// 64-bit stream bandwidth wall (the architecture is load-bound, §V).
#[test]
fn tnpu_scaling_is_stream_bound() {
    let px = pixels(4);
    let model = ZooModel::TfcW2A2
        .build_untrained(6, BnMode::Folded)
        .unwrap();
    let words = netpu_compiler::compile(&model, &px).unwrap().words;
    let mut cycles = Vec::new();
    for tnpus in [2usize, 8, 32] {
        let cfg = HwConfig {
            tnpus_per_lpu: tnpus,
            ..HwConfig::paper_instance()
        };
        cycles.push(run_inference(&cfg, words.clone()).unwrap().cycles);
    }
    // Monotone non-increasing in TNPU count…
    assert!(
        cycles[0] >= cycles[1] && cycles[1] >= cycles[2],
        "{cycles:?}"
    );
    // …but with diminishing returns: going 8→32 saves less than 2→8.
    let gain_low = cycles[0] as f64 / cycles[1] as f64;
    let gain_high = cycles[1] as f64 / cycles[2] as f64;
    assert!(gain_low >= gain_high, "{cycles:?}");
    // Weight streaming dominates: even 32 TNPUs stay within 2x of the
    // pure stream bound (2 cycles/word).
    let settings = netpu_compiler::stream::model_settings(&model);
    let stream_bound: usize = settings
        .iter()
        .map(netpu_compiler::stream::weight_words)
        .sum::<usize>()
        * 2;
    assert!(
        cycles[2] < 2 * stream_bound as u64,
        "{} vs {}",
        cycles[2],
        stream_bound
    );
}

/// Malformed streams are rejected, not mis-executed.
#[test]
fn corrupt_streams_fail_cleanly() {
    let cfg = HwConfig::paper_instance();
    let model = ZooModel::TfcW1A1
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let px = pixels(5);
    let mut words = netpu_compiler::compile(&model, &px).unwrap().words;
    words[0] ^= 0xF;
    match run_inference(&cfg, words) {
        Err(NetPuError::Stream(_)) => {}
        other => panic!("expected stream error, got {other:?}"),
    }
    // Truncated stream: the simulator detects the starved handshake.
    let full = netpu_compiler::compile(&model, &px).unwrap().words;
    let truncated = full[..full.len() / 2].to_vec();
    match run_inference(&cfg, truncated) {
        Err(NetPuError::Sim(_)) => {}
        other => panic!("expected deadlock detection, got {other:?}"),
    }
}

/// The cycle accounting is complete: phase counts sum to the measured
/// total (minus the final done edge).
#[test]
fn stats_account_for_every_cycle() {
    let cfg = HwConfig::paper_instance();
    let model = ZooModel::TfcW2A2
        .build_untrained(8, BnMode::Folded)
        .unwrap();
    let px = pixels(6);
    let run = run_inference(&cfg, netpu_compiler::compile(&model, &px).unwrap().words).unwrap();
    let accounted = run.stats.total();
    assert!(
        accounted <= run.cycles && run.cycles - accounted <= 2,
        "accounted {accounted} vs total {run:?}"
    );
    assert_eq!(run.stats.layers.len(), 5);
    // Weight cycles dominate for an FC-heavy model.
    let weight: u64 = run.stats.layers.iter().map(|l| l.weight_cycles).sum();
    assert!(
        weight * 2 > run.cycles,
        "weights {weight} of {}",
        run.cycles
    );
}
