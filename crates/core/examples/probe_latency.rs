use netpu_core::{netpu::run_inference, HwConfig};
use netpu_nn::{export::BnMode, zoo::ZooModel};

fn main() {
    let cfg = HwConfig::paper_instance();
    let px = vec![128u8; 784];
    println!("paper Table V (us): MT+fold 172.165/882.085/7408.225; MT nofold 175.8/895.8/7462.2; Sign 38.7/133.8/974.7");
    for (m, mode, label) in [
        (ZooModel::TfcW2A2, BnMode::Folded, "TFC w2a2 MT fold"),
        (ZooModel::SfcW2A2, BnMode::Folded, "SFC w2a2 MT fold"),
        (ZooModel::LfcW1A2, BnMode::Folded, "LFC w1a2 MT fold"),
        (ZooModel::TfcW2A2, BnMode::Hardware, "TFC w2a2 MT nofold"),
        (ZooModel::SfcW2A2, BnMode::Hardware, "SFC w2a2 MT nofold"),
        (ZooModel::LfcW1A2, BnMode::Hardware, "LFC w1a2 MT nofold"),
        (ZooModel::TfcW1A1, BnMode::Folded, "TFC w1a1 Sign"),
        (ZooModel::SfcW1A1, BnMode::Folded, "SFC w1a1 Sign"),
        (ZooModel::LfcW1A1, BnMode::Folded, "LFC w1a1 Sign"),
    ] {
        let model = m.build_untrained(1, mode).unwrap();
        let run = run_inference(&cfg, netpu_compiler::compile(&model, &px).unwrap().words).unwrap();
        println!(
            "{label:22} {:10.3} us ({} cycles)",
            run.latency_us, run.cycles
        );
    }
}
