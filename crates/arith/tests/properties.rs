//! Property-based tests for the arithmetic substrate.

use netpu_arith::activation::{sigmoid, tanh, MultiThreshold, SignActivation};
use netpu_arith::binary::{
    binary_dot8, decode_bipolar, encode_bipolar, pack_bits_u64, unpack_bits_u64,
};
use netpu_arith::quant::{
    extract_binary_channel, extract_signed_lane, extract_unsigned_lane, pack_binary_channels,
    pack_signed_lanes, pack_unsigned_lanes, words_for, QuantParams, LANES_PER_WORD,
};
use netpu_arith::{Fix, Precision};
use proptest::prelude::*;

/// Strategy over raw values in the 37-bit range.
fn fix_raw() -> impl Strategy<Value = i64> {
    -(1i64 << 36)..(1i64 << 36)
}

fn precision() -> impl Strategy<Value = Precision> {
    (1u8..=8).prop_map(|b| Precision::new(b).unwrap())
}

fn nonbinary_precision() -> impl Strategy<Value = Precision> {
    (2u8..=8).prop_map(|b| Precision::new(b).unwrap())
}

proptest! {
    /// Fixed-point addition agrees with clamped integer addition on raws.
    #[test]
    fn fix_add_matches_wide_integer(a in fix_raw(), b in fix_raw()) {
        let sum = Fix::from_raw(a) + Fix::from_raw(b);
        let wide = (a + b).clamp(-(1i64 << 36), (1i64 << 36) - 1);
        prop_assert_eq!(sum.raw(), wide);
    }

    /// Multiplication is commutative and never escapes the 37-bit range.
    #[test]
    fn fix_mul_commutes_and_saturates(a in fix_raw(), b in fix_raw()) {
        let x = Fix::from_raw(a);
        let y = Fix::from_raw(b);
        prop_assert_eq!(x * y, y * x);
        let r = (x * y).raw();
        prop_assert!((-(1i64 << 36)..(1i64 << 36)).contains(&r));
    }

    /// `from_f64 ∘ to_f64` is the identity on representable values.
    #[test]
    fn fix_f64_roundtrip(a in fix_raw()) {
        let v = Fix::from_raw(a);
        prop_assert_eq!(Fix::from_f64(v.to_f64()), v);
    }

    /// Negation is an involution except at the saturating minimum.
    #[test]
    fn fix_neg_involution(a in fix_raw()) {
        let v = Fix::from_raw(a);
        if v != Fix::MIN {
            prop_assert_eq!(-(-v), v);
        }
    }

    /// XNOR+popcount equals the integer dot product of decoded ±1 lanes
    /// at every width.
    #[test]
    fn binary_dot_equals_integer_dot(a in any::<u8>(), b in any::<u8>(), width in 1u32..=8) {
        let expect: i32 = (0..width)
            .map(|i| decode_bipolar(a >> i) * decode_bipolar(b >> i))
            .sum();
        prop_assert_eq!(binary_dot8(a, b, width), expect);
    }

    /// Bipolar encode/decode are inverses.
    #[test]
    fn bipolar_roundtrip(bit in 0u8..=1) {
        prop_assert_eq!(encode_bipolar(decode_bipolar(bit)), bit);
    }

    /// Bit packing round-trips through a stream word.
    #[test]
    fn bit_pack_roundtrip(bits in proptest::collection::vec(0u8..=1, 0..=64)) {
        let w = pack_bits_u64(&bits);
        prop_assert_eq!(unpack_bits_u64(w, bits.len()), bits);
    }

    /// Signed lane packing round-trips for every non-binary precision.
    #[test]
    fn signed_lane_roundtrip(p in nonbinary_precision(), seed in proptest::collection::vec(any::<i64>(), 1..40)) {
        let vals: Vec<i32> = seed
            .iter()
            .map(|&s| {
                let span = (p.signed_max() - p.signed_min() + 1) as i64;
                (p.signed_min() as i64 + s.rem_euclid(span)) as i32
            })
            .collect();
        let words = pack_signed_lanes(&vals, p);
        prop_assert_eq!(words.len(), vals.len().div_ceil(LANES_PER_WORD));
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(extract_signed_lane(words[i / 8], i % 8, p), v);
        }
    }

    /// Unsigned lane packing round-trips for every non-binary precision.
    #[test]
    fn unsigned_lane_roundtrip(p in nonbinary_precision(), seed in proptest::collection::vec(any::<u32>(), 1..40)) {
        let vals: Vec<i32> = seed
            .iter()
            .map(|&s| (s % (p.unsigned_max() as u32 + 1)) as i32)
            .collect();
        let words = pack_unsigned_lanes(&vals, p);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(extract_unsigned_lane(words[i / 8], i % 8, p), v);
        }
    }

    /// Binary channel packing round-trips and is 8x denser than lanes.
    #[test]
    fn binary_channel_roundtrip(seed in proptest::collection::vec(any::<bool>(), 1..300)) {
        let vals: Vec<i32> = seed.iter().map(|&b| if b { 1 } else { -1 }).collect();
        let words = pack_binary_channels(&vals);
        prop_assert_eq!(words.len(), words_for(vals.len(), Precision::W1));
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(extract_binary_channel(words[i / 64], i % 64), v);
        }
    }

    /// The quantizer output always fits the target precision.
    #[test]
    fn quant_output_in_range(raw in fix_raw(), s in -4.0f64..4.0, o in -16.0f64..16.0, p in precision()) {
        let q = QuantParams::from_f64(s, o);
        let out = q.apply(Fix::from_raw(raw), p);
        prop_assert!((0..=p.unsigned_max()).contains(&out));
    }

    /// Quantization is monotone when the scale is non-negative.
    #[test]
    fn quant_monotone_for_positive_scale(a in fix_raw(), b in fix_raw(), s in 0.0f64..4.0, o in -16.0f64..16.0, p in precision()) {
        let q = QuantParams::from_f64(s, o);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(q.apply(Fix::from_raw(lo), p) <= q.apply(Fix::from_raw(hi), p));
    }

    /// Sigmoid is bounded, monotone, and symmetric: σ(−x) = 1 − σ(x)
    /// (exact in the PWL construction).
    #[test]
    fn sigmoid_properties(a in -(1i64 << 20)..(1i64 << 20), b in -(1i64 << 20)..(1i64 << 20)) {
        let x = Fix::from_raw(a);
        let y = Fix::from_raw(b);
        let sx = sigmoid(x);
        prop_assert!(sx >= Fix::ZERO && sx <= Fix::ONE);
        prop_assert_eq!(sigmoid(-x), Fix::ONE - sx);
        if x <= y {
            prop_assert!(sx <= sigmoid(y));
        }
    }

    /// Tanh is bounded in [−1, 1] and monotone.
    #[test]
    fn tanh_properties(a in -(1i64 << 20)..(1i64 << 20), b in -(1i64 << 20)..(1i64 << 20)) {
        let x = Fix::from_raw(a);
        let y = Fix::from_raw(b);
        let tx = tanh(x);
        prop_assert!(tx >= -Fix::ONE && tx <= Fix::ONE);
        if x <= y {
            prop_assert!(tx <= tanh(y));
        }
    }

    /// Sign activation agrees with a 1-level multi-threshold.
    #[test]
    fn sign_is_one_level_multithreshold(raw in fix_raw(), traw in -(1i64 << 31)..(1i64 << 31)) {
        let thr = Fix::from_raw(traw);
        let sign = SignActivation::new(thr);
        let mt = MultiThreshold::new(vec![thr], Precision::W1).unwrap();
        let x = Fix::from_raw(raw);
        prop_assert_eq!(i32::from(sign.apply(x)), mt.apply(x));
    }

    /// Multi-threshold output is monotone in its input and saturates at
    /// the precision's max level.
    #[test]
    fn multithreshold_monotone(
        mut traws in proptest::collection::vec(-(1i64 << 20)..(1i64 << 20), 3),
        a in fix_raw(),
        b in fix_raw(),
    ) {
        traws.sort_unstable();
        let t: Vec<Fix> = traws.into_iter().map(Fix::from_raw).collect();
        let mt = MultiThreshold::new(t, Precision::W2).unwrap();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ylo = mt.apply(Fix::from_raw(lo));
        let yhi = mt.apply(Fix::from_raw(hi));
        prop_assert!(ylo <= yhi);
        prop_assert!((0..=3).contains(&ylo));
        prop_assert!((0..=3).contains(&yhi));
    }
}
