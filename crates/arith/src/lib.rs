#![deny(missing_docs)]
//! Fixed-point, quantized, and binarized arithmetic primitives for the
//! NetPU-M accelerator reproduction.
//!
//! This crate implements the numeric substrate shared by the reference
//! model (`netpu-nn`), the model compiler (`netpu-compiler`), and the
//! cycle-level accelerator model (`netpu-core`):
//!
//! * [`Fix`] — the paper's 37-bit fixed-point format (32 integer bits,
//!   5 fraction bits) used on the BN → activation → quantization datapath.
//! * [`Precision`] — 1–8-bit quantization precisions with their 3-bit
//!   hardware encodings.
//! * [`binary`] — the XNOR + popcount binarized multiplier of Table I.
//! * [`bitslice`] — the batch-major bitsliced variant: 64 images per
//!   `u64` lane, transpose shims, and the vertical popcount counter.
//! * [`activation`] — ReLU, piecewise-linear Sigmoid/Tanh (Eq. 4), Sign
//!   (Eq. 3), and Multi-Threshold (HWGQ) activations.
//! * [`quant`] — integer quantization, saturation, and stream-lane packing
//!   (8-bit lanes with placeholder bits; 8-channel packing for 1-bit data).
//! * [`cast`] — audited numeric conversions (saturating narrowings,
//!   bit-pattern reinterpretations, float bridges); the only module where
//!   a bare `as` numeric cast is permitted by the workspace lint.
//! * [`softmax`] — fixed-point exp/SoftMax (the paper's stated future
//!   work for the output layer).
//!
//! All operations are deterministic and bit-exact between the software
//! reference path and the hardware model path; the test suites of the
//! downstream crates rely on that property.

pub mod activation;
pub mod binary;
pub mod bitslice;
pub mod cast;
pub mod fixed;
mod json;
pub mod precision;
pub mod quant;
pub mod softmax;

pub use activation::{ActivationKind, MultiThreshold, SignActivation};
pub use fixed::Fix;
pub use precision::Precision;
pub use quant::{clamp_signed, clamp_unsigned, QuantParams};
