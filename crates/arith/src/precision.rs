//! Quantization precisions and their 3-bit hardware encodings.
//!
//! The MUL submodule of a TNPU carries a 3-bit *Input Precision Setting*
//! and a 3-bit *Weight Precision Setting* (§III.B.1) selecting 1–8-bit
//! operation. Precision 1 selects the XNOR (binary) datapath; 2–8 select
//! the integer datapath, where each operand occupies one 8-bit stream lane
//! and the unused high bits are ignored placeholders.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A quantization precision between 1 and 8 bits.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Precision(u8);

/// Error returned when constructing a [`Precision`] outside 1..=8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PrecisionError(pub u8);

impl fmt::Display for PrecisionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "precision {} out of supported range 1..=8 bits", self.0)
    }
}

impl std::error::Error for PrecisionError {}

impl Precision {
    /// 1-bit (binary / XNOR datapath).
    pub const W1: Precision = Precision(1);
    /// 2-bit.
    pub const W2: Precision = Precision(2);
    /// 4-bit.
    pub const W4: Precision = Precision(4);
    /// 8-bit (maximum supported by the architecture).
    pub const W8: Precision = Precision(8);

    /// Creates a precision, validating the 1..=8 range.
    pub fn new(bits: u8) -> Result<Precision, PrecisionError> {
        if (1..=8).contains(&bits) {
            Ok(Precision(bits))
        } else {
            Err(PrecisionError(bits))
        }
    }

    /// Number of bits.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// `true` when this precision uses the XNOR (binary) multiplier path.
    #[inline]
    pub fn is_binary(self) -> bool {
        self.0 == 1
    }

    /// The 3-bit hardware encoding: `bits - 1`, so 1-bit → `0b000` and
    /// 8-bit → `0b111`.
    #[inline]
    pub fn encode(self) -> u8 {
        self.0 - 1
    }

    /// Decodes the 3-bit hardware field.
    #[inline]
    pub fn decode(field: u8) -> Result<Precision, PrecisionError> {
        Precision::new((field & 0b111) + 1)
    }

    /// Number of distinct unsigned levels (`2^bits`).
    #[inline]
    pub fn levels(self) -> u32 {
        1u32 << self.0
    }

    /// Largest unsigned value representable at this precision.
    #[inline]
    pub fn unsigned_max(self) -> i32 {
        (1i32 << self.0) - 1
    }

    /// Largest signed value representable at this precision.
    #[inline]
    pub fn signed_max(self) -> i32 {
        (1i32 << (self.0 - 1)) - 1
    }

    /// Smallest signed value representable at this precision. For 1-bit
    /// (bipolar ±1) this is −1, matching the XNOR multiplier semantics.
    #[inline]
    pub fn signed_min(self) -> i32 {
        if self.0 == 1 {
            -1
        } else {
            -(1i32 << (self.0 - 1))
        }
    }

    /// Number of thresholds a Multi-Threshold activation needs at this
    /// output precision (`2^bits − 1`, §II.C).
    #[inline]
    pub fn multi_threshold_count(self) -> usize {
        (1usize << self.0) - 1
    }

    /// Iterates over all supported precisions, 1 through 8 bits.
    pub fn all() -> impl Iterator<Item = Precision> {
        (1..=8).map(Precision)
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}b", self.0)
    }
}

impl TryFrom<u8> for Precision {
    type Error = PrecisionError;
    fn try_from(bits: u8) -> Result<Precision, PrecisionError> {
        Precision::new(bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_range() {
        assert!(Precision::new(0).is_err());
        assert!(Precision::new(9).is_err());
        for b in 1..=8 {
            assert_eq!(Precision::new(b).unwrap().bits(), b);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        for p in Precision::all() {
            assert_eq!(Precision::decode(p.encode()).unwrap(), p);
        }
        assert_eq!(Precision::W1.encode(), 0b000);
        assert_eq!(Precision::W8.encode(), 0b111);
    }

    #[test]
    fn only_one_bit_is_binary() {
        assert!(Precision::W1.is_binary());
        for p in Precision::all().filter(|p| p.bits() > 1) {
            assert!(!p.is_binary());
        }
    }

    #[test]
    fn ranges_match_twos_complement() {
        assert_eq!(Precision::W8.unsigned_max(), 255);
        assert_eq!(Precision::W8.signed_max(), 127);
        assert_eq!(Precision::W8.signed_min(), -128);
        assert_eq!(Precision::W2.signed_min(), -2);
        assert_eq!(Precision::W2.signed_max(), 1);
        // 1-bit is bipolar {-1, +1}.
        assert_eq!(Precision::W1.signed_min(), -1);
    }

    #[test]
    fn multi_threshold_counts_match_paper() {
        // §IV: 4-bit needs 15 thresholds, 8-bit needs 255.
        assert_eq!(Precision::W4.multi_threshold_count(), 15);
        assert_eq!(Precision::W8.multi_threshold_count(), 255);
        assert_eq!(Precision::W1.multi_threshold_count(), 1);
    }
}
