//! The XNOR + popcount binarized multiplier (Table I, §II.B).
//!
//! In a binarized network a stored `1` bit represents the value +1 and a
//! `0` bit represents −1. The product of two bipolar values is +1 exactly
//! when the bits agree, i.e. `XNOR`. One 8-bit XNOR gate therefore
//! multiplies eight channel pairs at once, and a popcount over the XNOR
//! output recovers the *sum* of the eight products:
//!
//! `sum = (#ones) − (#zeros) = 2·popcount(xnor) − width`.

/// Encodes a bipolar value (+1 / −1) as a bit (1 / 0).
///
/// Any strictly positive value maps to `1`; zero and negatives map to `0`,
/// matching the Sign activation's output convention (Eq. 3 maps `≥ 0` to
/// +1 at the *activation*; at encode time a bipolar value is already ±1).
#[inline]
pub fn encode_bipolar(v: i32) -> u8 {
    u8::from(v > 0)
}

/// Decodes a bit (1 / 0) to a bipolar value (+1 / −1).
#[inline]
pub fn decode_bipolar(bit: u8) -> i32 {
    if bit & 1 == 1 {
        1
    } else {
        -1
    }
}

/// The XNOR of two 8-bit lanes: the binarized multiplier for eight
/// channels at once (Table I).
#[inline]
pub fn xnor8(a: u8, b: u8) -> u8 {
    !(a ^ b)
}

/// Sum of `width` bipolar products given the XNOR output: the popcount
/// scheme of §II.B. Only the low `width` bits of `x` participate.
///
/// ```
/// use netpu_arith::binary::{xnor8, popcount_sum};
/// // a = +1,+1,-1,-1 (bits 1100), b = +1,-1,+1,-1 (bits 1010):
/// // products: +1,-1,-1,+1 → sum 0.
/// assert_eq!(popcount_sum(xnor8(0b1100, 0b1010), 4), 0);
/// ```
#[inline]
pub fn popcount_sum(x: u8, width: u32) -> i32 {
    debug_assert!(width <= 8);
    let mask = if width == 8 { 0xFF } else { (1u8 << width) - 1 };
    let ones = crate::cast::i32_sat(i64::from((x & mask).count_ones()));
    2 * ones - crate::cast::i32_sat(i64::from(width))
}

/// Full binarized dot product of `width` channels packed into two 8-bit
/// lanes: XNOR then popcount. Equivalent to `Σ decode(aᵢ)·decode(bᵢ)`.
#[inline]
pub fn binary_dot8(a: u8, b: u8, width: u32) -> i32 {
    popcount_sum(xnor8(a, b), width)
}

/// Packs up to 64 bipolar bits (1 = +1, 0 = −1) little-endian into a
/// 64-bit stream word, the unit the Layer Input / Layer Weight buffers
/// deliver per cycle (Table III: 64-bit output width).
pub fn pack_bits_u64(bits: &[u8]) -> u64 {
    assert!(bits.len() <= 64, "at most 64 bits per stream word");
    let mut word = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        word |= u64::from(b & 1) << i;
    }
    word
}

/// Unpacks `n` little-endian bits from a 64-bit stream word.
pub fn unpack_bits_u64(word: u64, n: usize) -> Vec<u8> {
    assert!(n <= 64);
    (0..n).map(|i| crate::cast::lo8((word >> i) & 1)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I, signed column: XNOR output as bipolar product.
    #[test]
    fn xnor_truth_table_matches_table1() {
        // (a, b, product) in bipolar domain.
        let cases = [(1, 1, 1), (1, -1, -1), (-1, 1, -1), (-1, -1, 1)];
        for (a, b, prod) in cases {
            let bit = xnor8(encode_bipolar(a), encode_bipolar(b)) & 1;
            assert_eq!(decode_bipolar(bit), prod, "a={a} b={b}");
        }
    }

    /// Table I, unsigned column: the raw bit-level XNOR behaviour.
    #[test]
    fn xnor_truth_table_unsigned() {
        let cases = [(1u8, 1u8, 1u8), (1, 0, 0), (0, 1, 0), (0, 0, 1)];
        for (a, b, out) in cases {
            assert_eq!(xnor8(a, b) & 1, out);
        }
    }

    #[test]
    fn popcount_sum_recovers_signed_sum() {
        // All agree → +width.
        assert_eq!(popcount_sum(0xFF, 8), 8);
        // All disagree → -width.
        assert_eq!(popcount_sum(0x00, 8), -8);
        // Mixed.
        assert_eq!(popcount_sum(0b0000_1111, 8), 0);
        assert_eq!(popcount_sum(0b0000_0111, 3), 3);
    }

    #[test]
    fn binary_dot_matches_integer_dot_exhaustively() {
        // For every pair of 8-bit lane patterns, XNOR+popcount must equal
        // the integer dot product of the decoded ±1 vectors.
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                let expect: i32 = (0..8)
                    .map(|i| decode_bipolar(a >> i) * decode_bipolar(b >> i))
                    .sum();
                assert_eq!(binary_dot8(a, b, 8), expect, "a={a:#b} b={b:#b}");
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let bits: Vec<u8> = (0..64).map(|i| (i % 3 == 0) as u8).collect();
        let word = pack_bits_u64(&bits);
        assert_eq!(unpack_bits_u64(word, 64), bits);
        // Partial word.
        let short = [1u8, 0, 0, 1, 1];
        assert_eq!(unpack_bits_u64(pack_bits_u64(&short), 5), short);
    }

    #[test]
    #[should_panic(expected = "at most 64 bits")]
    fn pack_rejects_oversize() {
        pack_bits_u64(&[0; 65]);
    }
}
