//! Batch-major bitslicing: 64 images per `u64` lane.
//!
//! [`binary`](crate::binary) packs 64 *weights* of one neuron into a
//! stream word so a single XNOR + popcount multiplies 64 channels of
//! one image. This module turns the layout 90°: one `u64` **lane**
//! holds the *same channel bit of 64 different images* (image `i` in
//! bit `i`), so one XNOR against a broadcast weight bit multiplies one
//! channel of a whole 64-image slab, and a vertical carry-save counter
//! accumulates the per-image popcounts across channels.
//!
//! The two layouts meet at the slab boundary through the transpose
//! shims: [`transpose_in`] converts image-major packed channel words
//! (the [`crate::quant::pack_binary_channels`] layout) into
//! channel-major lanes via the classic 64×64 bit-matrix transpose
//! ([`transpose64`]), and [`transpose_out`] converts lanes back.
//! Slabs shorter than [`LANE_WIDTH`] images simply leave the high
//! image slots as junk bits: per-image results are independent, so a
//! consumer that never reads slots `>= batch` needs no masking — and
//! [`lane_mask`] is there for consumers that do.
//!
//! The per-lane accumulator [`LaneCounter`] generalizes
//! [`crate::binary::popcount_sum`]: after `n` [`LaneCounter::add`]
//! calls, [`LaneCounter::signed_sum`] recovers `2·popcount − n` for
//! every image slot independently — the XNOR sum identity of §II.B,
//! 64 images at a time.

use crate::cast;

/// Images per bitsliced lane (the width of a `u64`).
pub const LANE_WIDTH: usize = 64;

/// Bit planes in a [`LaneCounter`]: supports up to `2^14 − 1 = 16383`
/// accumulated terms, comfortably above the 8192-channel layer-width
/// ceiling of the model format.
const COUNTER_PLANES: usize = 14;

/// Mask selecting the low `count` image slots of a lane. `count` must
/// be at most [`LANE_WIDTH`].
#[inline]
pub fn lane_mask(count: usize) -> u64 {
    debug_assert!(count <= LANE_WIDTH);
    if count >= LANE_WIDTH {
        u64::MAX
    } else {
        (1u64 << count) - 1
    }
}

/// Broadcasts the low bit of `bit` across all 64 lanes: `1` becomes
/// all-ones, `0` becomes all-zeros.
#[inline]
pub fn broadcast_bit(bit: u64) -> u64 {
    0u64.wrapping_sub(bit & 1)
}

/// The bitsliced binarized multiplier: XNOR of 64 image bits against
/// one broadcast weight bit. Bit `i` of the result is `1` exactly when
/// image `i`'s bipolar input and the weight agree (product +1) — the
/// Table I truth table, one column per image.
#[inline]
pub fn xnor_broadcast(lane: u64, weight_bit: u64) -> u64 {
    !(lane ^ broadcast_bit(weight_bit))
}

/// In-place 64×64 bit-matrix transpose (the recursive block-swap
/// scheme of Hacker's Delight §7-3): afterwards bit `c` of word `r`
/// holds what bit `r` of word `c` held before.
pub fn transpose64(m: &mut [u64; 64]) {
    let mut j = 32;
    let mut mask = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0;
        while k < 64 {
            let t = (m[k] ^ (m[k + j] << j)) & !mask;
            m[k] ^= t;
            m[k + j] ^= t >> j;
            // Advance to the next row pair of this block size.
            k = (k + j + 1) & !j;
        }
        j >>= 1;
        mask ^= mask << j;
    }
}

/// Transpose-in shim: converts an image-major bit matrix — one row per
/// image, each row the packed channel words of
/// [`crate::quant::pack_binary_channels`] — into channel-major lanes.
/// Lane `c` of the result carries channel `c`'s bit of image `i` in
/// bit `i`. At most [`LANE_WIDTH`] rows; missing images (short slabs
/// or short rows) contribute `0` bits, which downstream consumers must
/// never read (see the module docs on tail handling).
pub fn transpose_in(rows: &[Vec<u64>], channels: usize) -> Vec<u64> {
    debug_assert!(rows.len() <= LANE_WIDTH);
    let words = channels.div_ceil(LANE_WIDTH);
    let mut lanes = Vec::with_capacity(channels);
    for w in 0..words {
        let mut m = [0u64; 64];
        for (i, row) in rows.iter().enumerate() {
            m[i] = row.get(w).copied().unwrap_or(0);
        }
        transpose64(&mut m);
        let block = (channels - w * LANE_WIDTH).min(LANE_WIDTH);
        lanes.extend_from_slice(&m[..block]);
    }
    lanes
}

/// Transpose-out shim: the inverse of [`transpose_in`]. Converts
/// channel-major lanes back into one packed channel-word row per image
/// (the [`crate::quant::pack_binary_channels`] layout), for `images`
/// of the slab. Junk bits in image slots `>= images` are discarded.
pub fn transpose_out(lanes: &[u64], images: usize) -> Vec<Vec<u64>> {
    debug_assert!(images <= LANE_WIDTH);
    let words = lanes.len().div_ceil(LANE_WIDTH);
    let mut rows = vec![vec![0u64; words]; images];
    for w in 0..words {
        let mut m = [0u64; 64];
        let block = (lanes.len() - w * LANE_WIDTH).min(LANE_WIDTH);
        m[..block].copy_from_slice(&lanes[w * LANE_WIDTH..w * LANE_WIDTH + block]);
        transpose64(&mut m);
        for (i, row) in rows.iter_mut().enumerate() {
            row[w] = m[i];
        }
    }
    rows
}

/// A bitsliced full adder: adds `a + b` into the running per-slot sum
/// `*sum` and returns the carry lane (the majority function), all 64
/// image slots at once.
#[inline]
fn full_add(sum: &mut u64, a: u64, b: u64) -> u64 {
    let s = *sum;
    let carry = (s & a) | (b & (s ^ a));
    *sum = s ^ a ^ b;
    carry
}

/// A vertical (carry-save) popcount accumulator over bitsliced lanes.
///
/// Each [`add`](LaneCounter::add) ripples one lane of product bits into
/// [`COUNTER_PLANES`] bit planes, so after `n` adds every image slot
/// `i` holds an independent popcount of how many of its `n` product
/// bits were `1` — at a cost of ~2 word ops per add (the expected
/// carry-chain length is below 2), instead of 64 per-image popcounts.
/// The bulk entry point [`accumulate_xnor_row`](LaneCounter::accumulate_xnor_row)
/// fuses the XNOR with a branchless Harley–Seal-style compressor tree
/// and is what the batch kernel's inner loop should use.
///
/// ```
/// use netpu_arith::bitslice::LaneCounter;
/// let mut c = LaneCounter::new();
/// c.add(0b11); // channel 0: images 0 and 1 agree with the weight
/// c.add(0b01); // channel 1: image 0 agrees, image 1 disagrees
/// assert_eq!(c.signed_sum(0), 2); // +1 +1
/// assert_eq!(c.signed_sum(1), 0); // +1 −1
/// ```
#[derive(Clone, Debug)]
pub struct LaneCounter {
    planes: [u64; COUNTER_PLANES],
    added: u64,
}

impl Default for LaneCounter {
    fn default() -> LaneCounter {
        LaneCounter::new()
    }
}

impl LaneCounter {
    /// An empty counter (zero terms added).
    #[inline]
    pub fn new() -> LaneCounter {
        LaneCounter {
            planes: [0u64; COUNTER_PLANES],
            added: 0,
        }
    }

    /// Number of lanes added so far.
    #[inline]
    pub fn added(&self) -> u64 {
        self.added
    }

    /// Adds one lane of product bits: each set bit increments that
    /// image slot's count by one. Ripple-carry across the bit planes;
    /// the counter saturates its capacity at `2^14 − 1` terms per slot
    /// (unreachable through the 8192-wide model ceiling), which a debug
    /// assertion pins down.
    #[inline]
    pub fn add(&mut self, lane: u64) {
        self.add_at(0, lane);
        self.added += 1;
    }

    /// Ripples `lane` into the planes starting at weight `2^start`.
    #[inline]
    fn add_at(&mut self, start: usize, lane: u64) {
        let mut bits = lane;
        for plane in &mut self.planes[start..] {
            if bits == 0 {
                return;
            }
            let carry = *plane & bits;
            *plane ^= bits;
            bits = carry;
        }
        debug_assert_eq!(bits, 0, "LaneCounter overflow: more than 2^14 - 1 terms");
    }

    /// Accumulates one whole weight row against the layer's input
    /// lanes: for every channel `c < in_len`, XNORs `lanes[c]` with
    /// weight bit `c` of `row` (the [`crate::quant::pack_binary_channels`]
    /// bit order: channel `c` in bit `c % 64` of word `c / 64`) and
    /// adds the 64-image product lane into the counter.
    ///
    /// Equivalent to `in_len` calls of [`xnor_broadcast`] +
    /// [`add`](LaneCounter::add), but the hot path runs a branchless
    /// Harley–Seal-style carry-save compressor: blocks of eight product
    /// lanes collapse through a full-adder tree into running `ones` /
    /// `twos` / `fours` / `eights` partial sums, and only weight-16
    /// carries (one lane per 16 channels at most) touch the ripple
    /// planes. This is the bitsliced analogue of the hardware popcount
    /// column of §II.B and what makes the batch kernel competitive with
    /// a native `popcount` per 64-channel word.
    pub fn accumulate_xnor_row(&mut self, lanes: &[u64], row: &[u64], in_len: usize) {
        debug_assert!(in_len <= lanes.len());
        debug_assert!(row.len() * LANE_WIDTH >= in_len);
        let mut ones = 0u64;
        let mut twos = 0u64;
        let mut fours = 0u64;
        let mut eights = 0u64;
        let mut c = 0usize;
        // Blocks of 8 channels never straddle a weight word (8 | 64).
        while c + 8 <= in_len {
            let w = row[c >> 6] >> (c & 63);
            let x0 = xnor_broadcast(lanes[c], w);
            let x1 = xnor_broadcast(lanes[c + 1], w >> 1);
            let x2 = xnor_broadcast(lanes[c + 2], w >> 2);
            let x3 = xnor_broadcast(lanes[c + 3], w >> 3);
            let x4 = xnor_broadcast(lanes[c + 4], w >> 4);
            let x5 = xnor_broadcast(lanes[c + 5], w >> 5);
            let x6 = xnor_broadcast(lanes[c + 6], w >> 6);
            let x7 = xnor_broadcast(lanes[c + 7], w >> 7);
            let t0 = full_add(&mut ones, x0, x1);
            let t1 = full_add(&mut ones, x2, x3);
            let t2 = full_add(&mut ones, x4, x5);
            let t3 = full_add(&mut ones, x6, x7);
            let f0 = full_add(&mut twos, t0, t1);
            let f1 = full_add(&mut twos, t2, t3);
            let e0 = full_add(&mut fours, f0, f1);
            // Half-add the weight-8 carry; only weight-16 spills reach
            // the ripple planes.
            let s16 = eights & e0;
            eights ^= e0;
            if s16 != 0 {
                self.add_at(4, s16);
            }
            c += 8;
        }
        // Fold the compressor leftovers into their weight planes, then
        // the sub-block channel tail one lane at a time.
        self.add_at(0, ones);
        self.add_at(1, twos);
        self.add_at(2, fours);
        self.add_at(3, eights);
        while c < in_len {
            self.add_at(0, xnor_broadcast(lanes[c], row[c >> 6] >> (c & 63)));
            c += 1;
        }
        self.added += cast::u64_from_usize(in_len);
    }

    /// The accumulated popcount of image slot `i`.
    #[inline]
    pub fn count(&self, i: usize) -> u64 {
        debug_assert!(i < LANE_WIDTH);
        let mut c = 0u64;
        for (k, plane) in self.planes.iter().enumerate() {
            c |= ((plane >> i) & 1) << k;
        }
        c
    }

    /// The signed XNOR sum of image slot `i`: `2·popcount − n` over the
    /// `n` lanes added so far — exactly what
    /// [`crate::binary::popcount_sum`] computes per word, generalized
    /// to an arbitrary number of bit-serial terms.
    #[inline]
    pub fn signed_sum(&self, i: usize) -> i32 {
        let ones = cast::i64_sat(i128::from(self.count(i)));
        let n = cast::i64_sat(i128::from(self.added));
        cast::i32_sat(2 * ones - n)
    }

    /// All 64 signed sums at once: slot `i` of the result equals
    /// [`signed_sum(i)`](LaneCounter::signed_sum). One [`transpose64`]
    /// flips the bit planes into per-image counts, which is an order of
    /// magnitude cheaper than 64 per-slot plane walks — use this in
    /// per-neuron post-processing loops.
    pub fn signed_sums(&self) -> [i32; 64] {
        let mut m = [0u64; 64];
        m[..COUNTER_PLANES].copy_from_slice(&self.planes);
        transpose64(&mut m);
        let n = cast::i64_sat(i128::from(self.added));
        let mut out = [0i32; 64];
        for (o, &count) in out.iter_mut().zip(m.iter()) {
            *o = cast::i32_sat(2 * cast::i64_sat(i128::from(count)) - n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binary::{decode_bipolar, encode_bipolar, popcount_sum};
    use crate::quant::pack_binary_channels;

    #[test]
    fn lane_mask_selects_low_slots() {
        assert_eq!(lane_mask(0), 0);
        assert_eq!(lane_mask(1), 1);
        assert_eq!(lane_mask(63), u64::MAX >> 1);
        assert_eq!(lane_mask(64), u64::MAX);
    }

    #[test]
    fn broadcast_bit_fans_out() {
        assert_eq!(broadcast_bit(1), u64::MAX);
        assert_eq!(broadcast_bit(0), 0);
        // Only the low bit participates.
        assert_eq!(broadcast_bit(0b10), 0);
        assert_eq!(broadcast_bit(0b11), u64::MAX);
    }

    #[test]
    fn xnor_broadcast_matches_table1_per_image() {
        // Images 0..4 carry inputs (+1, −1, +1, −1).
        let lane = 0b0101u64;
        for (w, bit) in [(1, 1u64), (-1, 0u64)] {
            let out = xnor_broadcast(lane, bit);
            for (i, a) in [1, -1, 1, -1].iter().enumerate() {
                let product = decode_bipolar(crate::cast::lo8((out >> i) & 1));
                assert_eq!(product, a * w, "image {i} weight {w}");
            }
        }
    }

    #[test]
    fn transpose64_is_an_involution_and_transposes() {
        let mut m = [0u64; 64];
        for (r, w) in m.iter_mut().enumerate() {
            *w = (r as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (1 << (r % 64));
        }
        let orig = m;
        transpose64(&mut m);
        for (r, &word) in m.iter().enumerate() {
            for (c, &ow) in orig.iter().enumerate() {
                assert_eq!((word >> c) & 1, (ow >> r) & 1, "({r},{c})");
            }
        }
        transpose64(&mut m);
        assert_eq!(m, orig);
    }

    #[test]
    fn transpose_in_lays_out_channel_lanes() {
        // 3 images × 70 channels straddles the word boundary.
        let channels = 70;
        let images: Vec<Vec<i32>> = (0..3)
            .map(|i| {
                (0..channels)
                    .map(|c| if (c + i) % 3 == 0 { 1 } else { -1 })
                    .collect()
            })
            .collect();
        let rows: Vec<Vec<u64>> = images.iter().map(|v| pack_binary_channels(v)).collect();
        let lanes = transpose_in(&rows, channels);
        assert_eq!(lanes.len(), channels);
        for (c, lane) in lanes.iter().enumerate() {
            for (i, img) in images.iter().enumerate() {
                let expect = u64::from(encode_bipolar(img[c]));
                assert_eq!((lane >> i) & 1, expect, "channel {c} image {i}");
            }
            // Missing images contribute zero bits.
            assert_eq!(lane >> images.len(), 0, "channel {c} junk bits");
        }
    }

    #[test]
    fn transpose_out_inverts_transpose_in() {
        let channels: usize = 130;
        let rows: Vec<Vec<u64>> = (0..5u64)
            .map(|i| {
                (0..channels.div_ceil(64) as u64)
                    .map(|w| (i + 1).wrapping_mul(0xA5A5_5A5A_DEAD_BEEF ^ w) & lane_mask(64))
                    .collect()
            })
            .collect();
        // Mask each row's tail word so the roundtrip is exact.
        let tail = channels % 64;
        let rows: Vec<Vec<u64>> = rows
            .into_iter()
            .map(|mut r| {
                if tail != 0 {
                    let last = r.len() - 1;
                    r[last] &= lane_mask(tail);
                }
                r
            })
            .collect();
        let lanes = transpose_in(&rows, channels);
        assert_eq!(transpose_out(&lanes, rows.len()), rows);
    }

    #[test]
    fn lane_counter_matches_popcount_sum_per_image() {
        // 8 channels × 64 images of pseudo-random product bits: every
        // image's signed sum must equal the scalar popcount identity.
        let lanes: Vec<u64> = (0..8u64)
            .map(|c| c.wrapping_mul(0x0123_4567_89AB_CDEF) ^ (c << 60) ^ 0xF0F0)
            .collect();
        let mut counter = LaneCounter::new();
        for &l in &lanes {
            counter.add(l);
        }
        assert_eq!(counter.added(), 8);
        for i in 0..64 {
            let xnor_bits: u8 = (0..8)
                .map(|c| crate::cast::lo8(((lanes[c] >> i) & 1) << c))
                .sum();
            assert_eq!(
                counter.signed_sum(i),
                popcount_sum(xnor_bits, 8),
                "image {i}"
            );
        }
    }

    #[test]
    fn lane_counter_counts_to_the_layer_width_ceiling() {
        // 8192 all-ones adds: every slot counts 8192, sum = +8192.
        let mut c = LaneCounter::new();
        for _ in 0..8192 {
            c.add(u64::MAX);
        }
        assert_eq!(c.count(0), 8192);
        assert_eq!(c.count(63), 8192);
        assert_eq!(c.signed_sum(17), 8192);
        // And all-disagree sums to −n.
        let mut d = LaneCounter::new();
        for _ in 0..300 {
            d.add(0);
        }
        assert_eq!(d.signed_sum(5), -300);
    }

    #[test]
    fn accumulate_xnor_row_equals_serial_adds() {
        // Row lengths poking every path: sub-block tails, word
        // boundaries, multi-word rows, and the weight-16 spill.
        for &in_len in &[1usize, 7, 8, 9, 63, 64, 65, 70, 128, 130, 200, 784] {
            let lanes: Vec<u64> = (0..in_len as u64)
                .map(|c| c.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (c << 17) ^ 0xDEAD)
                .collect();
            let row: Vec<u64> = (0..in_len.div_ceil(64) as u64)
                .map(|w| w.wrapping_mul(0x0123_4567_89AB_CDEF) ^ !w)
                .collect();
            let mut serial = LaneCounter::new();
            for (c, &lane) in lanes.iter().enumerate() {
                serial.add(xnor_broadcast(lane, row[c / 64] >> (c % 64)));
            }
            let mut bulk = LaneCounter::new();
            bulk.accumulate_xnor_row(&lanes, &row, in_len);
            assert_eq!(bulk.added(), serial.added(), "in_len {in_len}");
            let sums = bulk.signed_sums();
            for (i, &sum) in sums.iter().enumerate() {
                assert_eq!(
                    bulk.signed_sum(i),
                    serial.signed_sum(i),
                    "in_len {in_len} image {i}"
                );
                assert_eq!(sum, serial.signed_sum(i), "bulk sums image {i}");
            }
        }
    }

    #[test]
    fn lane_counter_slots_are_independent() {
        let mut c = LaneCounter::new();
        c.add(0b01);
        c.add(0b11);
        c.add(0b10);
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 2);
        assert_eq!(c.count(2), 0);
        assert_eq!(c.signed_sum(0), 1);
        assert_eq!(c.signed_sum(2), -3);
    }
}
