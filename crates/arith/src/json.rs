//! JSON codecs for the arithmetic primitives.
//!
//! The vendored `serde_json` stand-in serialises through explicit
//! [`ToJson`] / [`FromJson`] impls instead of derived serde traits, so
//! the three arithmetic types that appear in persisted models encode
//! themselves here: [`Fix`] as its raw scaled integer, [`Precision`] as
//! its bit width, and [`QuantParams`] as a two-field object.

use crate::{Fix, Precision, QuantParams};
use serde_json::{Error, FromJson, Map, ToJson, Value};

impl ToJson for Fix {
    fn to_json(&self) -> Value {
        Value::from(self.raw())
    }
}

impl FromJson for Fix {
    fn from_json(v: &Value) -> Result<Fix, Error> {
        v.as_i64()
            .map(Fix::from_raw)
            .ok_or_else(|| Error::msg("Fix: expected raw integer"))
    }
}

impl ToJson for Precision {
    fn to_json(&self) -> Value {
        Value::from(self.bits())
    }
}

impl FromJson for Precision {
    fn from_json(v: &Value) -> Result<Precision, Error> {
        let bits = v
            .as_u64()
            .ok_or_else(|| Error::msg("Precision: expected bit count"))?;
        Precision::new(crate::cast::u8_sat(bits)).map_err(|e| Error::msg(e.to_string()))
    }
}

impl ToJson for QuantParams {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("scale".into(), self.scale.to_json());
        m.insert("offset".into(), self.offset.to_json());
        Value::Object(m)
    }
}

impl FromJson for QuantParams {
    fn from_json(v: &Value) -> Result<QuantParams, Error> {
        Ok(QuantParams {
            scale: Fix::from_json(&v["scale"])?,
            offset: Fix::from_json(&v["offset"])?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fix_and_precision_roundtrip() {
        for raw in [-(1i64 << 36), -33, 0, 1, 1 << 20] {
            let f = Fix::from_raw(raw);
            assert_eq!(Fix::from_json(&f.to_json()).unwrap(), f);
        }
        for bits in 1..=8u8 {
            let p = Precision::new(bits).unwrap();
            assert_eq!(Precision::from_json(&p.to_json()).unwrap(), p);
        }
        assert!(Precision::from_json(&Value::from(12)).is_err());
    }

    #[test]
    fn quant_params_roundtrip() {
        let q = QuantParams::from_f64(0.125, -3.5);
        assert_eq!(QuantParams::from_json(&q.to_json()).unwrap(), q);
    }
}
