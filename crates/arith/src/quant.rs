//! Integer quantization and stream-lane packing.
//!
//! Two distinct mechanisms live here:
//!
//! * [`QuantParams`] — the QUAN submodule's affine re-quantization of a
//!   37-bit fixed-point activation output down to the next layer's input
//!   precision (§III.B.1: *QUAN Scale* and *QUAN Offset*, 32 bits each).
//! * Lane packing — how quantized operands travel on the 64-bit data
//!   stream: one 8-bit lane per operand for 2–8-bit precision (upper bits
//!   are ignored placeholders, §V), or eight 1-bit channels per lane for
//!   binary data (§III.B.1).

use crate::cast;
use crate::fixed::Fix;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};

/// Clamps `v` into the unsigned range of `p` (`0 ..= 2^bits − 1`).
#[inline]
pub fn clamp_unsigned(v: i64, p: Precision) -> i32 {
    cast::i32_sat(v.clamp(0, i64::from(p.unsigned_max())))
}

/// Clamps `v` into the signed range of `p`. For 1-bit this is the bipolar
/// set `{−1, +1}`: zero clamps to +1, matching the Sign activation's
/// `≥ 0 → 1` convention.
#[inline]
pub fn clamp_signed(v: i64, p: Precision) -> i32 {
    if p.is_binary() {
        if v >= 0 {
            1
        } else {
            -1
        }
    } else {
        cast::i32_sat(v.clamp(i64::from(p.signed_min()), i64::from(p.signed_max())))
    }
}

/// Affine re-quantization parameters for the QUAN submodule.
///
/// The hardware computes `q = clamp(floor(x·scale + offset), 0, 2^O − 1)`
/// where `x` is the 37-bit activation output, `scale`/`offset` are 32-bit
/// fixed-point parameter words, and `O` is the next layer's input
/// precision. The floor is the hardware's truncation of fraction bits.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct QuantParams {
    /// Multiplicative rescale factor.
    pub scale: Fix,
    /// Additive zero-point offset, applied after scaling.
    pub offset: Fix,
}

impl QuantParams {
    /// Identity parameters (`scale = 1`, `offset = 0`).
    pub const IDENTITY: QuantParams = QuantParams {
        scale: Fix::ONE,
        offset: Fix::ZERO,
    };

    /// Creates parameters from host-side floats, rounding into the 32-bit
    /// fixed-point parameter format (so the result is exactly what the
    /// hardware will apply).
    pub fn from_f64(scale: f64, offset: f64) -> QuantParams {
        QuantParams {
            scale: Fix::from_stream_word(Fix::from_f64(scale).to_stream_word()),
            offset: Fix::from_stream_word(Fix::from_f64(offset).to_stream_word()),
        }
    }

    /// Applies the quantization to a fixed-point value, producing an
    /// unsigned integer at `out` precision.
    #[inline]
    pub fn apply(&self, x: Fix, out: Precision) -> i32 {
        let scaled = x.sat_mul(self.scale).sat_add(self.offset);
        clamp_unsigned(scaled.floor_i64(), out)
    }
}

/// Number of 8-bit lanes in one 64-bit stream word.
pub const LANES_PER_WORD: usize = 8;

/// Packs signed operands into 64-bit stream words, one 8-bit
/// two's-complement lane per operand regardless of precision (2–8 bits).
/// The hardware ignores the placeholder bits above `p.bits()`; we encode
/// the full sign-extended byte so the words are also human-debuggable.
pub fn pack_signed_lanes(values: &[i32], p: Precision) -> Vec<u64> {
    assert!(!p.is_binary(), "1-bit data uses pack_binary_channels");
    values
        .chunks(LANES_PER_WORD)
        .map(|chunk| {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                debug_assert!(
                    v >= p.signed_min() && v <= p.signed_max(),
                    "value {v} out of {p} signed range"
                );
                word |= u64::from(cast::lane_of_i32(v)) << (8 * i);
            }
            word
        })
        .collect()
}

/// Packs unsigned operands into 64-bit stream words, one 8-bit lane each.
pub fn pack_unsigned_lanes(values: &[i32], p: Precision) -> Vec<u64> {
    assert!(!p.is_binary(), "1-bit data uses pack_binary_channels");
    values
        .chunks(LANES_PER_WORD)
        .map(|chunk| {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                debug_assert!(
                    v >= 0 && v <= p.unsigned_max(),
                    "value {v} out of {p} unsigned range"
                );
                word |= u64::from(cast::lane_of_i32(v)) << (8 * i);
            }
            word
        })
        .collect()
}

/// Packs bipolar ±1 operands as 1-bit channels, 64 per stream word. This
/// is the 8×-denser binary encoding that makes BNN layers stream faster
/// (Table V's Sign rows vs Multi-Threshold rows).
pub fn pack_binary_channels(values: &[i32]) -> Vec<u64> {
    values
        .chunks(64)
        .map(|chunk| {
            let mut word = 0u64;
            for (i, &v) in chunk.iter().enumerate() {
                word |= u64::from(crate::binary::encode_bipolar(v)) << i;
            }
            word
        })
        .collect()
}

/// Extracts lane `i` of a stream word as a sign-extended value at
/// precision `p` (the hardware masks away placeholder bits then
/// sign-extends from bit `p.bits()−1`).
#[inline]
pub fn extract_signed_lane(word: u64, i: usize, p: Precision) -> i32 {
    debug_assert!(i < LANES_PER_WORD && !p.is_binary());
    let byte = cast::lo8(word >> (8 * i));
    let bits = u32::from(p.bits());
    let masked = u32::from(byte) & ((1u32 << bits) - 1);
    // Sign-extend from the precision's top bit.
    cast::sign_extend(masked, bits)
}

/// Extracts lane `i` of a stream word as an unsigned value at precision
/// `p` (placeholder bits masked away).
#[inline]
pub fn extract_unsigned_lane(word: u64, i: usize, p: Precision) -> i32 {
    debug_assert!(i < LANES_PER_WORD && !p.is_binary());
    let byte = cast::lo8(word >> (8 * i));
    let mask = cast::u8_sat((1u64 << p.bits()) - 1);
    i32::from(byte & mask)
}

/// Extracts binary channel `i` (0..64) of a stream word as a bipolar ±1.
#[inline]
pub fn extract_binary_channel(word: u64, i: usize) -> i32 {
    debug_assert!(i < 64);
    crate::binary::decode_bipolar(cast::lo8(word >> i))
}

/// Number of 64-bit stream words needed to carry `n` operands at
/// precision `p`: 8 lanes per word for 2–8-bit data, 64 channels per word
/// for 1-bit data.
#[inline]
pub fn words_for(n: usize, p: Precision) -> usize {
    if p.is_binary() {
        n.div_ceil(64)
    } else {
        n.div_ceil(LANES_PER_WORD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_unsigned_saturates_by_precision() {
        assert_eq!(clamp_unsigned(300, Precision::W8), 255);
        assert_eq!(clamp_unsigned(-5, Precision::W8), 0);
        assert_eq!(clamp_unsigned(3, Precision::W2), 3);
        assert_eq!(clamp_unsigned(4, Precision::W2), 3);
    }

    #[test]
    fn clamp_signed_is_bipolar_for_one_bit() {
        assert_eq!(clamp_signed(0, Precision::W1), 1);
        assert_eq!(clamp_signed(-7, Precision::W1), -1);
        assert_eq!(clamp_signed(-7, Precision::W2), -2);
        assert_eq!(clamp_signed(130, Precision::W8), 127);
    }

    #[test]
    fn quant_params_apply_floor_and_clamp() {
        let q = QuantParams::from_f64(0.5, 0.0);
        assert_eq!(q.apply(Fix::from_f64(5.0), Precision::W8), 2);
        assert_eq!(q.apply(Fix::from_f64(5.9), Precision::W8), 2); // floor(2.95)
        assert_eq!(q.apply(Fix::from_f64(-3.0), Precision::W8), 0);
        assert_eq!(q.apply(Fix::from_f64(1e6), Precision::W2), 3);
    }

    #[test]
    fn quant_identity_truncates_fraction() {
        let q = QuantParams::IDENTITY;
        assert_eq!(q.apply(Fix::from_f64(3.96875), Precision::W8), 3);
    }

    #[test]
    fn signed_lane_roundtrip_all_precisions() {
        for p in Precision::all().filter(|p| !p.is_binary()) {
            let vals: Vec<i32> = (p.signed_min()..=p.signed_max()).collect();
            let words = pack_signed_lanes(&vals, p);
            for (n, &v) in vals.iter().enumerate() {
                let w = words[n / LANES_PER_WORD];
                assert_eq!(extract_signed_lane(w, n % LANES_PER_WORD, p), v, "{p}");
            }
        }
    }

    #[test]
    fn unsigned_lane_roundtrip_all_precisions() {
        for p in Precision::all().filter(|p| !p.is_binary()) {
            let vals: Vec<i32> = (0..=p.unsigned_max()).collect();
            let words = pack_unsigned_lanes(&vals, p);
            for (n, &v) in vals.iter().enumerate() {
                let w = words[n / LANES_PER_WORD];
                assert_eq!(extract_unsigned_lane(w, n % LANES_PER_WORD, p), v, "{p}");
            }
        }
    }

    #[test]
    fn binary_channel_roundtrip() {
        let vals: Vec<i32> = (0..100).map(|i| if i % 3 == 0 { 1 } else { -1 }).collect();
        let words = pack_binary_channels(&vals);
        assert_eq!(words.len(), 2);
        for (n, &v) in vals.iter().enumerate() {
            assert_eq!(extract_binary_channel(words[n / 64], n % 64), v);
        }
    }

    #[test]
    fn placeholder_bits_are_ignored_on_extract() {
        // Write garbage into the placeholder bits of a 2-bit lane; the
        // extractor must mask it away.
        let word = 0b1111_1101u64; // lane 0 byte = 0xFD; low 2 bits = 0b01
        assert_eq!(extract_unsigned_lane(word, 0, Precision::W2), 1);
        assert_eq!(extract_signed_lane(word, 0, Precision::W2), 1);
        let word2 = 0b1111_1110u64; // low 2 bits = 0b10 → signed -2
        assert_eq!(extract_signed_lane(word2, 0, Precision::W2), -2);
        assert_eq!(extract_unsigned_lane(word2, 0, Precision::W2), 2);
    }

    #[test]
    fn word_counts_reflect_binary_packing_density() {
        assert_eq!(words_for(784, Precision::W8), 98);
        assert_eq!(words_for(784, Precision::W2), 98); // placeholders: same words
        assert_eq!(words_for(784, Precision::W1), 13); // 8x denser
        assert_eq!(words_for(0, Precision::W8), 0);
        assert_eq!(words_for(1, Precision::W1), 1);
    }
}
