//! The TNPU ACTIV submodule's activation functions.
//!
//! NetPU-M supports five runtime-selectable activations (§III.B.1):
//! ReLU, Sigmoid, Tanh, Sign, and Multi-Threshold. Sigmoid uses the
//! piecewise-linear approximation of Eq. 4 (Amin et al.), Tanh is derived
//! from it via `tanh(x) = 2·sigmoid(2x) − 1`, Sign compares against a
//! trained 32-bit threshold (Eq. 3, BN folded in), and Multi-Threshold is
//! the HWGQ scheme counting `2^M − 1` trained thresholds so that the
//! output is already re-quantized (§II.C).

use crate::fixed::Fix;
use crate::precision::Precision;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The 3-bit activation selector of the ACTIV submodule.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit; full-precision output, needs QUAN.
    Relu,
    /// Piecewise-linear sigmoid (Eq. 4); full-precision output, needs QUAN.
    Sigmoid,
    /// Tanh via the shared sigmoid block; full-precision output, needs QUAN.
    Tanh,
    /// BNN sign with folded-BN threshold (Eq. 3); 1-bit output, bypasses QUAN.
    Sign,
    /// HWGQ multi-threshold; n-bit quantized output, bypasses QUAN.
    MultiThreshold,
}

impl ActivationKind {
    /// All five supported activations.
    pub const ALL: [ActivationKind; 5] = [
        ActivationKind::Relu,
        ActivationKind::Sigmoid,
        ActivationKind::Tanh,
        ActivationKind::Sign,
        ActivationKind::MultiThreshold,
    ];

    /// The 3-bit hardware encoding carried in the layer-setting stream.
    pub fn encode(self) -> u8 {
        match self {
            ActivationKind::Relu => 0b000,
            ActivationKind::Sigmoid => 0b001,
            ActivationKind::Tanh => 0b010,
            ActivationKind::Sign => 0b011,
            ActivationKind::MultiThreshold => 0b100,
        }
    }

    /// Decodes the 3-bit hardware field.
    pub fn decode(field: u8) -> Option<ActivationKind> {
        match field & 0b111 {
            0b000 => Some(ActivationKind::Relu),
            0b001 => Some(ActivationKind::Sigmoid),
            0b010 => Some(ActivationKind::Tanh),
            0b011 => Some(ActivationKind::Sign),
            0b100 => Some(ActivationKind::MultiThreshold),
            _ => None,
        }
    }

    /// `true` when the activation's output is already quantized and the
    /// crossbar must bypass the QUAN submodule (§III.B.1 Crossbar).
    pub fn bypasses_quan(self) -> bool {
        matches!(self, ActivationKind::Sign | ActivationKind::MultiThreshold)
    }

    /// `true` when the activation needs trained threshold parameters
    /// loaded during Neuron Initialization.
    pub fn needs_thresholds(self) -> bool {
        self.bypasses_quan()
    }
}

impl fmt::Display for ActivationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ActivationKind::Relu => "ReLU",
            ActivationKind::Sigmoid => "Sigmoid",
            ActivationKind::Tanh => "Tanh",
            ActivationKind::Sign => "Sign",
            ActivationKind::MultiThreshold => "Multi-Threshold",
        };
        f.write_str(s)
    }
}

/// ReLU on the fixed-point datapath: `max(0, x)`.
#[inline]
pub fn relu(x: Fix) -> Fix {
    x.max(Fix::ZERO)
}

/// The positive-half piecewise-linear function `f` of Eq. 4, applied to
/// `|x|`. Constants 0.84375, 0.625, and 0.5 are exactly representable in
/// the 5-fraction-bit format (27/32, 20/32, 16/32), which is why the
/// paper's approximation avoids DSP slices entirely.
fn pwl_f(abs_x: Fix) -> Fix {
    let c5 = Fix::from_f64(5.0);
    let c2375 = Fix::from_f64(2.375);
    let c1 = Fix::ONE;
    if abs_x >= c5 {
        Fix::ONE
    } else if abs_x >= c2375 {
        abs_x.asr(5) + Fix::from_f64(0.84375)
    } else if abs_x >= c1 {
        abs_x.asr(3) + Fix::from_f64(0.625)
    } else {
        abs_x.asr(2) + Fix::from_f64(0.5)
    }
}

/// Piecewise-linear sigmoid (Eq. 4): `f(|x|)` for `x ≥ 0`, `1 − f(|x|)`
/// for `x < 0`. Output lies in `[0, 1]`.
///
/// ```
/// use netpu_arith::{activation::sigmoid, Fix};
/// assert_eq!(sigmoid(Fix::ZERO).to_f64(), 0.5);
/// assert_eq!(sigmoid(Fix::from_f64(10.0)).to_f64(), 1.0);
/// assert_eq!(sigmoid(Fix::from_f64(-10.0)).to_f64(), 0.0);
/// ```
pub fn sigmoid(x: Fix) -> Fix {
    let f = pwl_f(x.abs());
    if x.is_negative() {
        Fix::ONE - f
    } else {
        f
    }
}

/// Tanh via the shared sigmoid block: `2·sigmoid(2x) − 1` (§III.B.1).
/// Output lies in `[−1, 1]`.
pub fn tanh(x: Fix) -> Fix {
    sigmoid(x.shl(1)).shl(1) - Fix::ONE
}

/// Reference (float) sigmoid, used by the trainer so that training sees
/// the same nonlinearity shape the hardware applies.
pub fn sigmoid_f64(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Reference (float) piecewise-linear sigmoid matching [`sigmoid`] in the
/// real domain (without fixed-point rounding).
pub fn pwl_sigmoid_f64(x: f64) -> f64 {
    let a = x.abs();
    let f = if a >= 5.0 {
        1.0
    } else if a >= 2.375 {
        a / 32.0 + 0.84375
    } else if a >= 1.0 {
        a / 8.0 + 0.625
    } else {
        a / 4.0 + 0.5
    };
    if x < 0.0 {
        1.0 - f
    } else {
        f
    }
}

/// The BNN Sign activation with its folded-BN threshold (Eq. 3).
///
/// Output is the hardware bit: `1` (= +1) when `x ≥ threshold`, `0`
/// (= −1) otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SignActivation {
    /// The trained threshold `x̄ − β√(σ²+ε)/γ`, a 32-bit parameter word.
    pub threshold: Fix,
}

impl SignActivation {
    /// Creates a sign activation from a threshold.
    pub fn new(threshold: Fix) -> SignActivation {
        SignActivation { threshold }
    }

    /// Applies the activation, returning the output bit.
    #[inline]
    pub fn apply(&self, x: Fix) -> u8 {
        u8::from(x >= self.threshold)
    }

    /// Applies the activation, returning the bipolar value ±1.
    #[inline]
    pub fn apply_bipolar(&self, x: Fix) -> i32 {
        crate::binary::decode_bipolar(self.apply(x))
    }
}

/// The HWGQ Multi-Threshold activation: `2^n − 1` sorted thresholds whose
/// exceed-count is the n-bit quantized output (§II.C).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MultiThreshold {
    thresholds: Vec<Fix>,
    out: Precision,
}

/// Error constructing a [`MultiThreshold`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MultiThresholdError {
    /// The threshold count does not equal `2^bits − 1` for the precision.
    WrongCount {
        /// Required threshold count.
        expected: usize,
        /// Provided threshold count.
        got: usize,
    },
    /// Thresholds are not sorted in non-decreasing order.
    Unsorted,
}

impl fmt::Display for MultiThresholdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MultiThresholdError::WrongCount { expected, got } => {
                write!(f, "expected {expected} thresholds, got {got}")
            }
            MultiThresholdError::Unsorted => f.write_str("thresholds must be non-decreasing"),
        }
    }
}

impl std::error::Error for MultiThresholdError {}

impl MultiThreshold {
    /// Creates a multi-threshold activation for an `out`-bit output.
    /// Thresholds must be sorted non-decreasing and count `2^bits − 1`.
    pub fn new(
        thresholds: Vec<Fix>,
        out: Precision,
    ) -> Result<MultiThreshold, MultiThresholdError> {
        let expected = out.multi_threshold_count();
        if thresholds.len() != expected {
            return Err(MultiThresholdError::WrongCount {
                expected,
                got: thresholds.len(),
            });
        }
        if thresholds.windows(2).any(|w| w[0] > w[1]) {
            return Err(MultiThresholdError::Unsorted);
        }
        Ok(MultiThreshold { thresholds, out })
    }

    /// The sorted threshold parameter words.
    pub fn thresholds(&self) -> &[Fix] {
        &self.thresholds
    }

    /// The output precision.
    pub fn out_precision(&self) -> Precision {
        self.out
    }

    /// Applies the activation: the count of thresholds `≤ x`, an
    /// unsigned `out`-bit value. Because the output is already at the next
    /// layer's precision, re-quantization is folded into the activation.
    #[inline]
    pub fn apply(&self, x: Fix) -> i32 {
        // Thresholds are sorted: binary search for the partition point.
        crate::cast::i32_sat_usize(self.thresholds.partition_point(|&t| t <= x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_kinds() {
        for k in ActivationKind::ALL {
            assert_eq!(ActivationKind::decode(k.encode()), Some(k));
        }
        assert_eq!(ActivationKind::decode(0b111), None);
    }

    #[test]
    fn quan_bypass_matches_crossbar_rules() {
        assert!(ActivationKind::Sign.bypasses_quan());
        assert!(ActivationKind::MultiThreshold.bypasses_quan());
        assert!(!ActivationKind::Relu.bypasses_quan());
        assert!(!ActivationKind::Sigmoid.bypasses_quan());
        assert!(!ActivationKind::Tanh.bypasses_quan());
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(relu(Fix::from_f64(-3.0)), Fix::ZERO);
        assert_eq!(relu(Fix::from_f64(3.0)).to_f64(), 3.0);
        assert_eq!(relu(Fix::MIN), Fix::ZERO);
    }

    #[test]
    fn sigmoid_hits_eq4_anchor_points() {
        // Segment boundaries evaluated per Eq. 4.
        assert_eq!(sigmoid(Fix::ZERO).to_f64(), 0.5);
        assert_eq!(sigmoid(Fix::ONE).to_f64(), 0.75); // 1/8 + 0.625
        assert_eq!(sigmoid(Fix::from_f64(5.0)).to_f64(), 1.0);
        assert_eq!(sigmoid(Fix::from_f64(-5.0)).to_f64(), 0.0);
        // 2.375 / 32 = 0.0742; fixed-point: 2.375*32=76 raw; 76>>5=2 raw = 0.0625.
        let y = sigmoid(Fix::from_f64(2.375)).to_f64();
        assert_eq!(y, 0.0625 + 0.84375);
    }

    #[test]
    fn sigmoid_is_monotone_and_bounded() {
        let mut prev = Fix::MIN;
        let mut last = sigmoid(Fix::from_f64(-8.0));
        let mut x = -8.0;
        while x <= 8.0 {
            let fx = Fix::from_f64(x);
            let y = sigmoid(fx);
            assert!(y >= Fix::ZERO && y <= Fix::ONE, "sigmoid({x}) out of [0,1]");
            if fx > prev {
                assert!(y >= last, "sigmoid not monotone at {x}");
            }
            prev = fx;
            last = y;
            x += 0.03125;
        }
    }

    #[test]
    fn sigmoid_tracks_true_sigmoid_closely() {
        // The PWL approximation (Amin et al.) has max error ~0.019 in the
        // real domain; 5-fraction-bit truncation adds up to 1/32 more.
        let mut x = -8.0;
        while x <= 8.0 {
            let approx = sigmoid(Fix::from_f64(x)).to_f64();
            let exact = sigmoid_f64(x);
            assert!(
                (approx - exact).abs() < 0.019 + 2.0 / 32.0,
                "at {x}: approx {approx} vs exact {exact}"
            );
            x += 0.25;
        }
    }

    #[test]
    fn tanh_is_odd_shaped_and_bounded() {
        assert_eq!(tanh(Fix::ZERO).to_f64(), 0.0);
        assert_eq!(tanh(Fix::from_f64(4.0)).to_f64(), 1.0);
        assert_eq!(tanh(Fix::from_f64(-4.0)).to_f64(), -1.0);
        // tanh(x) = 2*sigmoid(2x) - 1 by construction.
        for x in [-3.0, -0.5, 0.25, 1.5] {
            let fx = Fix::from_f64(x);
            let expect = sigmoid(fx.shl(1)).shl(1) - Fix::ONE;
            assert_eq!(tanh(fx), expect);
        }
    }

    #[test]
    fn sign_threshold_comparison_is_ge() {
        let s = SignActivation::new(Fix::from_f64(1.5));
        assert_eq!(s.apply(Fix::from_f64(1.5)), 1);
        assert_eq!(s.apply(Fix::from_f64(1.46875)), 0);
        assert_eq!(s.apply_bipolar(Fix::from_f64(2.0)), 1);
        assert_eq!(s.apply_bipolar(Fix::from_f64(-2.0)), -1);
    }

    #[test]
    fn multi_threshold_counts_exceedances() {
        let t: Vec<Fix> = [0.0, 1.0, 2.0].iter().map(|&v| Fix::from_f64(v)).collect();
        let mt = MultiThreshold::new(t, Precision::W2).unwrap();
        assert_eq!(mt.apply(Fix::from_f64(-0.5)), 0);
        assert_eq!(mt.apply(Fix::from_f64(0.0)), 1); // inclusive
        assert_eq!(mt.apply(Fix::from_f64(1.5)), 2);
        assert_eq!(mt.apply(Fix::from_f64(99.0)), 3);
    }

    #[test]
    fn multi_threshold_validates_count_and_order() {
        let t2 = vec![Fix::ZERO, Fix::ONE];
        assert!(matches!(
            MultiThreshold::new(t2, Precision::W2),
            Err(MultiThresholdError::WrongCount {
                expected: 3,
                got: 2
            })
        ));
        let unsorted = vec![Fix::ONE, Fix::ZERO, Fix::ONE];
        assert!(matches!(
            MultiThreshold::new(unsorted, Precision::W2),
            Err(MultiThresholdError::Unsorted)
        ));
    }

    #[test]
    fn multi_threshold_output_fits_precision() {
        let p = Precision::W4;
        let t: Vec<Fix> = (0..15).map(Fix::from_i32).collect();
        let mt = MultiThreshold::new(t, p).unwrap();
        assert_eq!(mt.apply(Fix::from_f64(1e6)), p.unsigned_max());
        assert_eq!(mt.apply(Fix::MIN), 0);
    }
}
