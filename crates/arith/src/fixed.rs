//! The paper's 37-bit fixed-point number format.
//!
//! The BN submodule of a TNPU outputs a *37-bit fixed-point value, which
//! has 32 integer bits value and five fraction bits* (§III.B.1). The
//! activation and quantization submodules operate on the same format. We
//! model it as [`Fix`]: an `i64`-backed value whose raw integer is the real
//! value scaled by `2^5`, saturated to the signed 37-bit range on every
//! operation — exactly what a saturating 37-bit hardware datapath does.

use crate::cast;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// Number of fraction bits in the hardware fixed-point format.
pub const FRAC_BITS: u32 = 5;
/// Total width of the hardware fixed-point format in bits.
pub const TOTAL_BITS: u32 = 37;
/// Scale factor between the real value and the raw integer (`2^FRAC_BITS`).
pub const SCALE: i64 = 1 << FRAC_BITS;
/// Largest representable raw value (`2^36 - 1`).
pub const RAW_MAX: i64 = (1 << (TOTAL_BITS - 1)) - 1;
/// Smallest representable raw value (`-2^36`).
pub const RAW_MIN: i64 = -(1 << (TOTAL_BITS - 1));

/// A saturating 37-bit fixed-point value with 5 fraction bits (Q32.5).
///
/// This is the datapath type between the BN, ACTIV, and QUAN submodules of
/// a TNPU. All arithmetic saturates to the 37-bit range instead of
/// wrapping, matching the hardware's saturating adders.
///
/// ```
/// use netpu_arith::Fix;
/// let half = Fix::from_f64(0.5);
/// assert_eq!((half + half).to_f64(), 1.0);
/// assert_eq!(Fix::from_i32(3).to_f64(), 3.0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Fix {
    raw: i64,
}

impl Fix {
    /// The value zero.
    pub const ZERO: Fix = Fix { raw: 0 };
    /// The value one.
    pub const ONE: Fix = Fix { raw: SCALE };
    /// The largest representable value (`2^31 - 2^-5`).
    pub const MAX: Fix = Fix { raw: RAW_MAX };
    /// The smallest representable value (`-2^31`).
    pub const MIN: Fix = Fix { raw: RAW_MIN };
    /// The smallest positive value (`2^-5 = 0.03125`).
    pub const EPSILON: Fix = Fix { raw: 1 };

    /// Builds a value from a raw scaled integer, saturating to 37 bits.
    #[inline]
    pub fn from_raw(raw: i64) -> Fix {
        Fix {
            raw: raw.clamp(RAW_MIN, RAW_MAX),
        }
    }

    /// Returns the raw scaled integer (`value * 32`).
    #[inline]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// Converts an `i32` integer value (e.g. a 32-bit accumulator output)
    /// into fixed point. Always exact: the accumulator range fits in the
    /// 32 integer bits of the format.
    #[inline]
    pub fn from_i32(v: i32) -> Fix {
        Fix {
            raw: i64::from(v) << FRAC_BITS,
        }
    }

    /// Converts from `f64`, rounding to nearest and saturating.
    pub fn from_f64(v: f64) -> Fix {
        if v.is_nan() {
            return Fix::ZERO;
        }
        let scaled = (v * cast::f64_from_i64(SCALE)).round();
        Fix::from_raw(cast::f64_to_i64_sat(scaled))
    }

    /// Converts to `f64` (always exact: 37 bits fit in an `f64` mantissa).
    #[inline]
    pub fn to_f64(self) -> f64 {
        cast::f64_from_i64(self.raw) / cast::f64_from_i64(SCALE)
    }

    /// Truncates toward negative infinity to an integer (drops the
    /// fraction bits), as the hardware quantizer does.
    #[inline]
    pub fn floor_i64(self) -> i64 {
        self.raw >> FRAC_BITS
    }

    /// Rounds to the nearest integer, ties away from zero.
    #[inline]
    pub fn round_i64(self) -> i64 {
        let half = SCALE / 2;
        if self.raw >= 0 {
            (self.raw + half) >> FRAC_BITS
        } else {
            -((-self.raw + half) >> FRAC_BITS)
        }
    }

    /// Saturating addition.
    #[inline]
    pub fn sat_add(self, rhs: Fix) -> Fix {
        Fix::from_raw(self.raw + rhs.raw)
    }

    /// Saturating subtraction.
    #[inline]
    pub fn sat_sub(self, rhs: Fix) -> Fix {
        Fix::from_raw(self.raw - rhs.raw)
    }

    /// Saturating multiplication. The hardware multiplies the two raw
    /// 37-bit values into a 74-bit product and truncates the 5 extra
    /// fraction bits toward negative infinity before saturating.
    #[inline]
    pub fn sat_mul(self, rhs: Fix) -> Fix {
        let wide = i128::from(self.raw) * i128::from(rhs.raw);
        Fix::from_raw(cast::i64_sat(wide >> FRAC_BITS))
    }

    /// Arithmetic right shift of the value (used by the piecewise-linear
    /// sigmoid: `x >> k` in Eq. 4 of the paper).
    #[inline]
    pub fn asr(self, k: u32) -> Fix {
        Fix { raw: self.raw >> k }
    }

    /// Left shift, saturating.
    #[inline]
    #[allow(clippy::should_implement_trait)] // saturating, unlike ops::Shl
    pub fn shl(self, k: u32) -> Fix {
        let wide = i128::from(self.raw) << k;
        Fix::from_raw(cast::i64_sat(wide))
    }

    /// Absolute value, saturating (`|MIN|` saturates to `MAX`).
    #[inline]
    pub fn abs(self) -> Fix {
        if self.raw < 0 {
            Fix::from_raw(self.raw.saturating_neg())
        } else {
            self
        }
    }

    /// `true` when the value is negative.
    #[inline]
    pub fn is_negative(self) -> bool {
        self.raw < 0
    }

    /// Returns the larger of two values.
    #[inline]
    pub fn max(self, other: Fix) -> Fix {
        if self.raw >= other.raw {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two values.
    #[inline]
    pub fn min(self, other: Fix) -> Fix {
        if self.raw <= other.raw {
            self
        } else {
            other
        }
    }

    /// Multiplies by a Q16.16 scale word: the BN submodule's multiplier
    /// format. The BN *scale* needs far more fraction precision than the
    /// Q32.5 datapath (typical folded scales are ~10⁻³), so its 32-bit
    /// parameter word is interpreted as 16 integer + 16 fraction bits and
    /// the 37-bit product is truncated back to 5 fraction bits —
    /// `y = (raw · scale) >> 16`, saturating.
    #[inline]
    pub fn mul_q16(self, scale_q16: i32) -> Fix {
        let wide = i128::from(self.raw) * i128::from(scale_q16);
        Fix::from_raw(cast::i64_sat(wide >> 16))
    }

    /// Encodes a host-side real scale factor as a Q16.16 parameter word,
    /// rounding to nearest and saturating.
    pub fn q16_scale_from_f64(scale: f64) -> i32 {
        cast::f64_to_i32_sat((scale * 65536.0).round())
    }

    /// Interprets a 32-bit two's-complement word from the parameter stream
    /// as a fixed-point value. BN scale/offset, Sign thresholds, and QUAN
    /// scale/offset are transmitted as *32-bit fixed-point values*
    /// (§III.B.1); they use the same 5-fraction-bit alignment as the
    /// internal format.
    #[inline]
    pub fn from_stream_word(word: u32) -> Fix {
        Fix {
            raw: cast::i64_from_word(word),
        }
    }

    /// Encodes the value as a 32-bit two's-complement parameter word,
    /// saturating to the 32-bit range.
    #[inline]
    pub fn to_stream_word(self) -> u32 {
        cast::word_from_i64(i64::from(cast::i32_sat(self.raw)))
    }
}

impl Add for Fix {
    type Output = Fix;
    #[inline]
    fn add(self, rhs: Fix) -> Fix {
        self.sat_add(rhs)
    }
}

impl Sub for Fix {
    type Output = Fix;
    #[inline]
    fn sub(self, rhs: Fix) -> Fix {
        self.sat_sub(rhs)
    }
}

impl Mul for Fix {
    type Output = Fix;
    #[inline]
    fn mul(self, rhs: Fix) -> Fix {
        self.sat_mul(rhs)
    }
}

impl Div for Fix {
    type Output = Fix;
    /// Fixed-point division, truncating toward negative infinity.
    /// Division by zero saturates to `MAX`/`MIN` by sign (hardware would
    /// never divide; this exists for host-side threshold derivation).
    fn div(self, rhs: Fix) -> Fix {
        if rhs.raw == 0 {
            return if self.raw >= 0 { Fix::MAX } else { Fix::MIN };
        }
        let wide = (i128::from(self.raw) << FRAC_BITS) / i128::from(rhs.raw);
        Fix::from_raw(cast::i64_sat(wide))
    }
}

impl Neg for Fix {
    type Output = Fix;
    #[inline]
    fn neg(self) -> Fix {
        Fix::from_raw(self.raw.saturating_neg())
    }
}

impl fmt::Debug for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Fix({})", self.to_f64())
    }
}

impl fmt::Display for Fix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl From<i32> for Fix {
    fn from(v: i32) -> Fix {
        Fix::from_i32(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_values() {
        assert_eq!(Fix::ZERO.to_f64(), 0.0);
        assert_eq!(Fix::ONE.to_f64(), 1.0);
        assert_eq!(Fix::EPSILON.to_f64(), 0.03125);
        assert_eq!(Fix::MAX.raw(), (1 << 36) - 1);
        assert_eq!(Fix::MIN.raw(), -(1 << 36));
    }

    #[test]
    fn f64_roundtrip_is_exact_for_representable_values() {
        for raw in [
            -(1i64 << 36),
            -12345,
            -1,
            0,
            1,
            31,
            32,
            12345,
            (1 << 36) - 1,
        ] {
            let v = Fix::from_raw(raw);
            assert_eq!(Fix::from_f64(v.to_f64()), v);
        }
    }

    #[test]
    fn from_f64_rounds_to_nearest() {
        // 0.015625 = 1/64 is exactly half an epsilon; rounds away from zero.
        assert_eq!(Fix::from_f64(0.015625).raw(), 1);
        assert_eq!(Fix::from_f64(0.01).raw(), 0);
        assert_eq!(Fix::from_f64(-0.01).raw(), 0);
        assert_eq!(Fix::from_f64(-0.03).raw(), -1);
    }

    #[test]
    fn from_f64_saturates() {
        assert_eq!(Fix::from_f64(1e20), Fix::MAX);
        assert_eq!(Fix::from_f64(-1e20), Fix::MIN);
        assert_eq!(Fix::from_f64(f64::NAN), Fix::ZERO);
    }

    #[test]
    fn add_saturates_at_both_ends() {
        assert_eq!(Fix::MAX + Fix::ONE, Fix::MAX);
        assert_eq!(Fix::MIN + (-Fix::ONE), Fix::MIN);
        assert_eq!(Fix::MAX + Fix::MIN, Fix::from_raw(RAW_MAX + RAW_MIN));
    }

    #[test]
    fn mul_matches_f64_for_small_values() {
        let a = Fix::from_f64(1.5);
        let b = Fix::from_f64(-2.25);
        assert_eq!((a * b).to_f64(), -3.375);
    }

    #[test]
    fn mul_truncates_toward_negative_infinity() {
        // 0.03125 * 0.5 = 0.015625, not representable; truncates to 0.
        let e = Fix::EPSILON;
        let half = Fix::from_f64(0.5);
        assert_eq!((e * half).raw(), 0);
        // -0.03125 * 0.5 truncates to -0.03125 (toward -inf).
        assert_eq!(((-e) * half).raw(), -1);
    }

    #[test]
    fn mul_saturates() {
        let big = Fix::from_f64(1e9);
        assert_eq!(big * big, Fix::MAX);
        assert_eq!(big * (-big), Fix::MIN);
    }

    #[test]
    fn div_inverts_mul_for_exact_cases() {
        let a = Fix::from_f64(12.5);
        let b = Fix::from_f64(2.0);
        assert_eq!((a / b).to_f64(), 6.25);
        assert_eq!(Fix::ONE / Fix::ZERO, Fix::MAX);
        assert_eq!((-Fix::ONE) / Fix::ZERO, Fix::MIN);
    }

    #[test]
    fn asr_matches_eq4_shift_semantics() {
        let x = Fix::from_f64(3.0);
        assert_eq!(x.asr(2).to_f64(), 0.75);
        let neg = Fix::from_f64(-1.0);
        // Arithmetic shift keeps the sign.
        assert!(neg.asr(3).is_negative());
    }

    #[test]
    fn floor_and_round_behave_on_negatives() {
        let v = Fix::from_f64(-1.25);
        assert_eq!(v.floor_i64(), -2);
        assert_eq!(v.round_i64(), -1);
        let w = Fix::from_f64(-1.5);
        assert_eq!(w.round_i64(), -2); // ties away from zero
        assert_eq!(Fix::from_f64(1.5).round_i64(), 2);
    }

    #[test]
    fn stream_word_roundtrip() {
        for v in [-4.5f64, 0.0, 0.84375, 1.0, 123456.0, -99999.96875] {
            let fx = Fix::from_f64(v);
            assert_eq!(Fix::from_stream_word(fx.to_stream_word()), fx);
        }
    }

    #[test]
    fn stream_word_saturates_wide_values() {
        let big = Fix::from_f64(1e8); // raw exceeds i32
        assert_eq!(big.to_stream_word(), i32::MAX as u32);
    }

    #[test]
    fn q16_mul_handles_small_scales() {
        // A scale of 1/1024 is far below the Q32.5 epsilon but exact in
        // Q16.16.
        let s = Fix::q16_scale_from_f64(1.0 / 1024.0);
        let x = Fix::from_i32(4096);
        assert_eq!(x.mul_q16(s).to_f64(), 4.0);
    }

    #[test]
    fn q16_mul_matches_f64_within_rounding() {
        for (v, sc) in [(1000.0, 0.00731), (-250.0, 0.5), (7.25, -1.25)] {
            let got = Fix::from_f64(v)
                .mul_q16(Fix::q16_scale_from_f64(sc))
                .to_f64();
            assert!((got - v * sc).abs() < 0.04, "{v}*{sc}: got {got}");
        }
    }

    #[test]
    fn q16_mul_saturates() {
        let s = Fix::q16_scale_from_f64(30000.0);
        assert_eq!(Fix::from_f64(1e9).mul_q16(s), Fix::MAX);
        assert_eq!(Fix::from_f64(-1e9).mul_q16(s), Fix::MIN);
    }

    #[test]
    fn q16_scale_encoding_saturates() {
        assert_eq!(Fix::q16_scale_from_f64(1e9), i32::MAX);
        assert_eq!(Fix::q16_scale_from_f64(-1e9), i32::MIN);
        assert_eq!(Fix::q16_scale_from_f64(1.0), 65536);
    }

    #[test]
    fn neg_of_min_saturates() {
        assert_eq!(-Fix::MIN, Fix::MAX);
        assert_eq!(Fix::MIN.abs(), Fix::MAX);
    }

    #[test]
    fn ordering_follows_value() {
        assert!(Fix::from_f64(-2.0) < Fix::from_f64(-1.0));
        assert!(Fix::from_f64(1.0) < Fix::from_f64(1.03125));
        assert_eq!(Fix::from_f64(2.0).max(Fix::from_f64(3.0)).to_f64(), 3.0);
        assert_eq!(Fix::from_f64(2.0).min(Fix::from_f64(3.0)).to_f64(), 2.0);
    }
}
