//! Fixed-point SoftMax support (the paper's §III.B.1 future work:
//! "We will continue to complete this architecture to support the
//! SoftMax").
//!
//! The hardware-friendly construction: shift each score by the running
//! maximum (so exponents are ≤ 0 and cannot overflow), evaluate
//! `exp(x) = 2^(x·log₂e)` with an integer shift for the exponent's
//! integer part and a quadratic polynomial for `2^frac` — multipliers
//! and shifts only, no transcendental unit — and normalise on the host
//! (the single division does not belong on the accelerator's hot path).
//!
//! Like the BN multiplier, the SoftMax unit works at Q16.16 internal
//! width: the Q32.5 datapath's 1/32 resolution is too coarse for
//! probabilities. [`exp_q16`] therefore returns a Q16.16 word.

use crate::cast;
use crate::fixed::Fix;

/// `log₂(e)` as a Q16.16 multiplier word.
const LOG2E_Q16: i64 = 94_548; // round(1.4426950408889634 · 65536)
/// One in Q16.16.
const ONE_Q16: i64 = 1 << 16;
/// `0.65242` in Q16.16 (quadratic 2^f fit, linear term).
const C1_Q16: i64 = 42_760;
/// `0.34758` in Q16.16 (quadratic 2^f fit, square term).
const C2_Q16: i64 = 22_779;

/// Fixed-point `exp(x)` for `x ≤ 0` as a Q16.16 word, flushing to zero
/// once the result underflows the 16 fraction bits.
///
/// Uses `exp(x) = 2^(x·log₂e)` with the exponent's integer part as an
/// arithmetic shift and `2^f ≈ 1 + 0.65242·f + 0.34758·f²` for the
/// fraction (exact at both endpoints; max error ≈ 0.21%).
///
/// ```
/// use netpu_arith::{softmax::exp_q16, Fix};
/// assert_eq!(exp_q16(Fix::ZERO), 1 << 16);
/// let e = exp_q16(Fix::from_f64(-1.0)) as f64 / 65536.0;
/// assert!((e - (-1.0f64).exp()).abs() < 0.005);
/// ```
pub fn exp_q16(x: Fix) -> i64 {
    debug_assert!(x <= Fix::ZERO, "exp_q16 takes max-shifted (≤0) scores");
    // y = x·log2(e) in Q16.16: raw is Q.5, so shift down by 5.
    let y_q16 = cast::i64_sat((i128::from(x.raw()) * i128::from(LOG2E_Q16)) >> 5);
    let int_part = y_q16 >> 16; // floor, ≤ 0
    let frac = y_q16 - (int_part << 16); // ∈ [0, 65536)
    let poly = ONE_Q16 + ((C1_Q16 * frac) >> 16) + ((C2_Q16 * ((frac * frac) >> 16)) >> 16);
    let shift = -int_part;
    if shift >= 40 {
        0
    } else {
        poly >> shift
    }
}

/// SoftMax over raw output-layer scores: max-shift, fixed-point exp,
/// host-side normalisation. Returns probabilities in `[0, 1]` summing
/// to 1 (or a uniform distribution if every exponent flushed to zero).
pub fn softmax(scores: &[Fix]) -> Vec<f64> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(Fix::MIN, Fix::max);
    let exps: Vec<i64> = scores.iter().map(|&s| exp_q16(s.sat_sub(max))).collect();
    let sum: i64 = exps.iter().sum();
    if sum == 0 {
        return vec![1.0 / cast::f64_from_usize(scores.len()); scores.len()];
    }
    exps.into_iter()
        .map(|e| cast::f64_from_i64(e) / cast::f64_from_i64(sum))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_f(x: f64) -> f64 {
        exp_q16(Fix::from_f64(x)) as f64 / ONE_Q16 as f64
    }

    #[test]
    fn exp_matches_reference_within_tolerance() {
        let mut x = 0.0f64;
        while x >= -20.0 {
            let got = exp_f(x);
            let want = x.exp();
            // Polynomial error (~0.21% relative) + the Q32.5 input grid
            // (±1/64 on x → ±1.6% relative on exp).
            assert!(
                (got - want).abs() < 0.003 + 0.02 * want,
                "exp({x}): got {got}, want {want}"
            );
            x -= 0.125;
        }
    }

    #[test]
    fn exp_is_monotone() {
        let mut prev = Fix::ZERO;
        let mut last = exp_q16(Fix::ZERO);
        let mut x = 0.0f64;
        while x >= -10.0 {
            let fx = Fix::from_f64(x);
            let e = exp_q16(fx);
            if fx < prev {
                assert!(e <= last, "exp not monotone at {x}");
            }
            prev = fx;
            last = e;
            x -= 0.03125;
        }
    }

    #[test]
    fn exp_anchors() {
        assert_eq!(exp_q16(Fix::ZERO), ONE_Q16);
        // exp(-ln2) = 0.5 — x = -0.6875 is the closest grid point.
        let half = exp_f(-std::f64::consts::LN_2);
        assert!((half - 0.5).abs() < 0.01, "{half}");
    }

    #[test]
    fn exp_flushes_to_zero_far_below() {
        assert_eq!(exp_q16(Fix::from_f64(-30.0)), 0);
        assert_eq!(exp_q16(Fix::from_f64(-1e6)), 0);
    }

    #[test]
    fn softmax_normalises_and_orders() {
        let scores: Vec<Fix> = [3.0, 1.0, 4.0, -2.0]
            .iter()
            .map(|&v| Fix::from_f64(v))
            .collect();
        let p = softmax(&scores);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[0] && p[0] > p[1] && p[1] > p[3]);
        let argmax = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(argmax, 2);
    }

    #[test]
    fn softmax_matches_float_reference() {
        let raw = [-1.5f64, 0.25, 2.0, 1.0, -4.0];
        let scores: Vec<Fix> = raw.iter().map(|&v| Fix::from_f64(v)).collect();
        let got = softmax(&scores);
        let max = raw.iter().cloned().fold(f64::MIN, f64::max);
        let exps: Vec<f64> = raw.iter().map(|&v| (v - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        for (g, e) in got.iter().zip(exps.iter().map(|e| e / sum)) {
            assert!((g - e).abs() < 0.02, "{g} vs {e}");
        }
    }

    #[test]
    fn softmax_edge_cases() {
        assert!(softmax(&[]).is_empty());
        let one = softmax(&[Fix::from_f64(5.0)]);
        assert_eq!(one, vec![1.0]);
        let tie = softmax(&[Fix::ONE, Fix::ONE]);
        assert!((tie[0] - 0.5).abs() < 1e-12);
        let spread = softmax(&[Fix::from_f64(-1000.0), Fix::from_f64(1000.0)]);
        assert_eq!(spread[1], 1.0);
    }

    #[test]
    fn integer_scores_are_on_grid_and_accurate() {
        // Folded-domain scores are integers: exp should be within the
        // polynomial error alone there.
        for k in 0..15i32 {
            let got = exp_f(-f64::from(k));
            let want = (-f64::from(k)).exp();
            assert!((got - want).abs() < 0.003 * (1.0 + want), "k={k}");
        }
    }
}
