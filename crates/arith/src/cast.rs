//! Audited numeric conversions.
//!
//! The workspace lint (`cargo run -p xtask -- lint`) bans bare `as`
//! numeric casts in `netpu-arith` and `netpu-core`: a silent `as` can
//! wrap, truncate, or change sign without any trace in the code. Every
//! conversion the datapath needs lives here instead, named for the
//! policy it applies:
//!
//! * `*_sat` — **saturating** conversions that clamp to the target range,
//!   matching the saturating adders the hardware uses everywhere else.
//! * `lo8` / `lane_of_i32` / `i32_from_bits` / `bits_of_i32` /
//!   `word_from_i64` / `sign_extend` — **bit-pattern** conversions where
//!   wrapping is the *point* (lane extraction, two's-complement
//!   reinterpretation, sign extension from a narrow field).
//! * `f64_from_*` / `f64_to_*_sat` — float bridges for host-side code;
//!   the float→int direction relies on Rust's saturating `as` semantics
//!   (NaN maps to 0) and is the only place a numeric `as` is written.
//!
//! This module is the single file exempt from the no-bare-cast lint, so
//! each `as` below is an audited site with its policy stated.

/// Saturating `u64` → `usize` (exact on 64-bit targets).
#[inline]
pub fn usize_sat(v: u64) -> usize {
    v.try_into().unwrap_or(usize::MAX)
}

/// Widening `usize` → `u64` (exact on every supported target).
#[inline]
pub fn u64_from_usize(v: usize) -> u64 {
    v.try_into().unwrap_or(u64::MAX)
}

/// Widening `usize` → `u128` (exact on every supported target).
#[inline]
pub fn u128_from_usize(v: usize) -> u128 {
    u128::from(u64_from_usize(v))
}

/// Widening `u32` → `usize` (exact on every supported target).
#[inline]
pub fn usize_from_u32(v: u32) -> usize {
    usize_sat(u64::from(v))
}

/// Saturating `usize` → `u32`.
#[inline]
pub fn u32_sat_usize(v: usize) -> u32 {
    v.try_into().unwrap_or(u32::MAX)
}

/// Saturating `u64` → `u32`.
#[inline]
pub fn u32_sat(v: u64) -> u32 {
    v.try_into().unwrap_or(u32::MAX)
}

/// Saturating `i64` → `usize` (negative values clamp to 0).
#[inline]
pub fn usize_sat_i64(v: i64) -> usize {
    v.try_into().unwrap_or(if v < 0 { 0 } else { usize::MAX })
}

/// Saturating `usize` → `i64`.
#[inline]
pub fn i64_sat_usize(v: usize) -> i64 {
    v.try_into().unwrap_or(i64::MAX)
}

/// Saturating `usize` → `i32`.
#[inline]
pub fn i32_sat_usize(v: usize) -> i32 {
    v.try_into().unwrap_or(i32::MAX)
}

/// Saturating `i64` → `i32`.
#[inline]
pub fn i32_sat(v: i64) -> i32 {
    v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32 // audited: clamped
}

/// Saturating `i128` → `i64`.
#[inline]
pub fn i64_sat(v: i128) -> i64 {
    v.clamp(i128::from(i64::MIN), i128::from(i64::MAX)) as i64 // audited: clamped
}

/// Saturating `u64` → `u8`.
#[inline]
pub fn u8_sat(v: u64) -> u8 {
    v.try_into().unwrap_or(u8::MAX)
}

/// Low 8 bits of a word — lane extraction, wrapping by design.
#[inline]
pub fn lo8(v: impl Into<u64>) -> u8 {
    (v.into() & 0xFF) as u8 // audited: masked to 8 bits
}

/// Low 16 bits of a word, wrapping by design.
#[inline]
pub fn lo16(v: u64) -> u16 {
    (v & 0xFFFF) as u16 // audited: masked to 16 bits
}

/// Saturating `i64` → `u64` (negative values clamp to 0).
#[inline]
pub fn u64_sat_i64(v: i64) -> u64 {
    v.try_into().unwrap_or(0)
}

/// Low 32 bits of a word, wrapping by design.
#[inline]
pub fn lo32(v: u64) -> u32 {
    (v & 0xFFFF_FFFF) as u32 // audited: masked to 32 bits
}

/// Two's-complement low byte of an `i32` — the 8-bit stream-lane
/// encoding (placeholder bits above the precision are the sign bits).
#[inline]
pub fn lane_of_i32(v: i32) -> u8 {
    lo8(bits_of_i32(v) & 0xFF)
}

/// Reinterprets a 32-bit pattern as a signed two's-complement value.
#[inline]
pub fn i32_from_bits(bits: u32) -> i32 {
    i32::from_ne_bytes(bits.to_ne_bytes())
}

/// Reinterprets a signed 32-bit value as its two's-complement pattern.
#[inline]
pub fn bits_of_i32(v: i32) -> u32 {
    u32::from_ne_bytes(v.to_ne_bytes())
}

/// Sign-extends a 32-bit stream word into an `i64` (parameter words are
/// 32-bit two's complement, §III.B.1).
#[inline]
pub fn i64_from_word(word: u32) -> i64 {
    i64::from(i32_from_bits(word))
}

/// Encodes the low 32 bits of a signed value as a stream word pattern,
/// wrapping by design (callers clamp to the i32 range first when the
/// value must be representable).
#[inline]
pub fn word_from_i64(v: i64) -> u32 {
    lo32(u64::from_ne_bytes(v.to_ne_bytes()))
}

/// Sign-extends the low `bits` bits of `field` (1 ≤ `bits` ≤ 32) into an
/// `i32` — how the hardware reads a narrow two's-complement lane.
#[inline]
pub fn sign_extend(field: u32, bits: u32) -> i32 {
    debug_assert!((1..=32).contains(&bits));
    let shift = 32 - bits;
    i32_from_bits(field << shift) >> shift
}

/// Exact-enough `i64` → `f64` (37-bit datapath values fit the mantissa;
/// wider values round, which host-side statistics tolerate).
#[inline]
pub fn f64_from_i64(v: i64) -> f64 {
    v as f64 // audited: rounds to nearest for |v| > 2^53
}

/// `u64` → `f64`, rounding to nearest beyond 2^53.
#[inline]
pub fn f64_from_u64(v: u64) -> f64 {
    v as f64 // audited: rounds to nearest for v > 2^53
}

/// `usize` → `f64`, rounding to nearest beyond 2^53.
#[inline]
pub fn f64_from_usize(v: usize) -> f64 {
    f64_from_u64(u64_from_usize(v))
}

/// Saturating `f64` → `i64` (NaN maps to 0).
#[inline]
pub fn f64_to_i64_sat(v: f64) -> i64 {
    v as i64 // audited: float→int `as` saturates; NaN → 0
}

/// Saturating `f64` → `i32` (NaN maps to 0).
#[inline]
pub fn f64_to_i32_sat(v: f64) -> i32 {
    v as i32 // audited: float→int `as` saturates; NaN → 0
}

/// Saturating `f64` → `u64` (negatives and NaN map to 0).
#[inline]
pub fn f64_to_u64_sat(v: f64) -> u64 {
    v as u64 // audited: float→int `as` saturates; NaN → 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_narrowings_clamp() {
        assert_eq!(usize_sat(u64::MAX), usize::MAX);
        assert_eq!(usize_sat_i64(-5), 0);
        assert_eq!(usize_sat_i64(5), 5);
        assert_eq!(i32_sat(i64::MAX), i32::MAX);
        assert_eq!(i32_sat(i64::MIN), i32::MIN);
        assert_eq!(i32_sat(-7), -7);
        assert_eq!(i64_sat(i128::MAX), i64::MAX);
        assert_eq!(i64_sat(i128::MIN), i64::MIN);
        assert_eq!(i64_sat(42), 42);
        assert_eq!(u8_sat(300), u8::MAX);
        assert_eq!(u8_sat(7), 7);
        assert_eq!(u32_sat_usize(usize::MAX), u32::MAX);
        assert_eq!(i64_sat_usize(usize::MAX), i64::MAX);
        assert_eq!(i32_sat_usize(usize::MAX), i32::MAX);
    }

    #[test]
    fn bit_pattern_conversions_roundtrip() {
        for v in [i32::MIN, -1, 0, 1, i32::MAX] {
            assert_eq!(i32_from_bits(bits_of_i32(v)), v);
        }
        assert_eq!(lo8(0xABCDu16), 0xCD);
        assert_eq!(lo8(0x1_0000_0000u64 | 0x42), 0x42);
        assert_eq!(lo32(0xDEAD_BEEF_CAFE_F00Du64), 0xCAFE_F00D);
        assert_eq!(lane_of_i32(-1), 0xFF);
        assert_eq!(lane_of_i32(-2), 0xFE);
        assert_eq!(lane_of_i32(5), 5);
        assert_eq!(i64_from_word(0xFFFF_FFFF), -1);
        assert_eq!(i64_from_word(0x7FFF_FFFF), i64::from(i32::MAX));
        assert_eq!(word_from_i64(-1), 0xFFFF_FFFF);
        assert_eq!(word_from_i64(i64::from(i32::MIN)), 0x8000_0000);
    }

    #[test]
    fn sign_extension_matches_twos_complement() {
        assert_eq!(sign_extend(0b10, 2), -2);
        assert_eq!(sign_extend(0b01, 2), 1);
        assert_eq!(sign_extend(0xFF, 8), -1);
        assert_eq!(sign_extend(0x7F, 8), 127);
        assert_eq!(sign_extend(0xFFFF_FFFF, 32), -1);
    }

    #[test]
    fn float_bridges_saturate_and_zero_nan() {
        assert_eq!(f64_to_i64_sat(1e300), i64::MAX);
        assert_eq!(f64_to_i64_sat(-1e300), i64::MIN);
        assert_eq!(f64_to_i64_sat(f64::NAN), 0);
        assert_eq!(f64_to_i32_sat(1e300), i32::MAX);
        assert_eq!(f64_to_u64_sat(-5.0), 0);
        assert_eq!(f64_to_u64_sat(2.9), 2);
        assert_eq!(f64_from_i64(-33), -33.0);
        assert_eq!(f64_from_usize(98), 98.0);
    }
}
