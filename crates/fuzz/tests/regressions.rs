//! Replays every committed crasher fixture through the differential
//! oracle. A fixture is a minimized stream that once violated the
//! fuzzer's invariant; these tests pin the fixes.

use netpu_core::HwConfig;
use netpu_fuzz::{classify, quiet_panics, words_from_text, Verdict};
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn fixture_files() -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures directory exists")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "words"))
        .collect();
    files.sort();
    files
}

#[test]
fn every_fixture_upholds_the_invariant() {
    let cfg = HwConfig::paper_instance();
    let files = fixture_files();
    assert!(
        !files.is_empty(),
        "no committed fixtures: the false-accept witness should be here"
    );
    for path in files {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let words = words_from_text(&text).expect("fixture parses");
        let verdict = quiet_panics(|| classify(&cfg, &words));
        assert!(
            !verdict.is_crasher(),
            "{}: still a crasher ({})",
            path.display(),
            verdict.signature()
        );
    }
}

#[test]
fn the_trailing_garbage_false_accept_now_rejects_with_npc001() {
    // The committed witness: a valid loadable plus one garbage word.
    // The burst-segment checker must reject the pseudo-header the
    // accelerator would choke on, at its exact byte offset.
    let cfg = HwConfig::paper_instance();
    let text = std::fs::read_to_string(fixtures_dir().join("false-accept-0.words"))
        .expect("committed fixture present");
    let words = words_from_text(&text).expect("fixture parses");
    match classify(&cfg, &words) {
        Verdict::Rejected { rules } => {
            assert!(rules.contains(&"NPC001"), "expected NPC001 in {rules:?}");
        }
        other => panic!("expected a stable rejection, got {other:?}"),
    }
    // And the diagnostic points past the first loadable's layout end,
    // not at the genuine (valid) first header.
    let report = netpu_check::check_words(&words, &cfg);
    assert!(
        report.errors().all(|d| d.byte_offset != Some(0)),
        "rejection blamed the valid first header"
    );
}

#[test]
fn fixture_files_round_trip_through_the_text_format() {
    for path in fixture_files() {
        let text = std::fs::read_to_string(&path).expect("fixture readable");
        let words = words_from_text(&text).expect("fixture parses");
        let reencoded = netpu_fuzz::words_to_text(&words);
        let reparsed = words_from_text(&reencoded).expect("re-encoded text parses");
        assert_eq!(words, reparsed, "{} did not round-trip", path.display());
    }
}
