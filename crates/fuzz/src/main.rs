//! `netpu-fuzz`: run a fuzz campaign from the command line.
//!
//! ```text
//! cargo run --release -p netpu-fuzz -- [--iters N] [--seed S] [--write-fixtures DIR]
//! ```
//!
//! Exits 0 when the campaign finds no invariant violations, 1 when it
//! does (after printing and, with `--write-fixtures`, persisting each
//! minimized crasher), 2 on usage or setup errors. Deterministic: the
//! same `--seed`/`--iters` pair replays the same campaign, which is how
//! the CI `fuzz-smoke` stage pins its behavior.

use netpu_core::HwConfig;
use netpu_fuzz::{run, words_to_text, FuzzConfig};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    fuzz: FuzzConfig,
    write_fixtures: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("usage: netpu-fuzz [--iters N] [--seed S] [--write-fixtures DIR]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut fuzz = FuzzConfig::default();
    let mut write_fixtures = None;
    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        let mut value = |what: &str| -> Result<String, ExitCode> {
            match argv.next() {
                Some(v) => Ok(v),
                None => {
                    eprintln!("netpu-fuzz: {flag} needs {what}");
                    Err(usage())
                }
            }
        };
        match flag.as_str() {
            "--iters" => match value("a count")?.parse() {
                Ok(n) => fuzz.iterations = n,
                Err(e) => {
                    eprintln!("netpu-fuzz: bad --iters: {e}");
                    return Err(usage());
                }
            },
            "--seed" => match value("a seed")?.parse() {
                Ok(s) => fuzz.seed = s,
                Err(e) => {
                    eprintln!("netpu-fuzz: bad --seed: {e}");
                    return Err(usage());
                }
            },
            "--write-fixtures" => write_fixtures = Some(PathBuf::from(value("a directory")?)),
            _ => {
                eprintln!("netpu-fuzz: unknown flag {flag}");
                return Err(usage());
            }
        }
    }
    Ok(Args {
        fuzz,
        write_fixtures,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };
    let cfg = HwConfig::paper_instance();
    let report = match run(&cfg, &args.fuzz) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("netpu-fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    println!(
        "netpu-fuzz: seed {} | {} iterations | {} rejected, {} clean, {} crashers",
        args.fuzz.seed, report.iterations, report.rejected, report.clean, report.crasher_count
    );
    println!(
        "coverage: {} signatures over {} corpus entries",
        report.coverage, report.corpus_len
    );
    for sig in &report.signatures {
        println!("  {sig}");
    }

    if report.crashers.is_empty() {
        println!("invariant held: every mutant was rejected with a stable NPC diagnostic or simulated cleanly");
        return ExitCode::SUCCESS;
    }

    for (k, c) in report.crashers.iter().enumerate() {
        println!(
            "crasher {k}: class {} found at iteration {} ({} words minimized)",
            c.class,
            c.found_at,
            c.words.len()
        );
        if let Some(dir) = &args.write_fixtures {
            let path = dir.join(format!("{}-{k}.words", c.class));
            let body = format!(
                "# netpu-fuzz crasher: class {}, seed {}, iteration {}\n{}",
                c.class,
                args.fuzz.seed,
                c.found_at,
                words_to_text(&c.words)
            );
            match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body)) {
                Ok(()) => println!("  wrote {}", path.display()),
                Err(e) => eprintln!("  cannot write {}: {e}", path.display()),
            }
        }
    }
    ExitCode::FAILURE
}
