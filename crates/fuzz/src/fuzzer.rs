//! The coverage-guided fuzz loop and crasher minimizer.
//!
//! One iteration: pick a corpus stream, apply 1–3 structured
//! [`Mutation`]s, classify the mutant through the differential
//! [`oracle`](crate::oracle). New signatures join the corpus; invariant
//! violations are minimized (bounded ddmin over words) and reported as
//! [`Crasher`]s. Everything is a pure function of `(HwConfig, seed,
//! iterations)` — no time, no global state — so a CI smoke run and a
//! long soak with the same parameters see the identical stream of
//! mutants, and any crasher it reports reproduces from its fixture.

use crate::corpus::Corpus;
use crate::mutate::{self, Mutation};
use crate::oracle::{classify, quiet_panics, CrasherClass, Verdict};
use netpu_arith::cast;
use netpu_compiler::{PackingMode, StreamLayout};
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::fmt;

/// Classification probes the minimizer may spend per crasher.
const MINIMIZE_BUDGET: usize = 240;
/// Retained crashers per class; later duplicates only bump the count.
const MAX_CRASHERS_PER_CLASS: usize = 4;

/// Fuzz campaign parameters.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// RNG seed: equal seeds replay equal campaigns.
    pub seed: u64,
    /// Mutants to generate and classify.
    pub iterations: u64,
    /// Mutations stacked per mutant (drawn uniformly from `1..=max`).
    pub max_mutations: u32,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            seed: 0x4E50,
            iterations: 256,
            max_mutations: 3,
        }
    }
}

/// One minimized invariant violation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Crasher {
    /// Which invariant broke.
    pub class: CrasherClass,
    /// The minimized witness stream.
    pub words: Vec<u64>,
    /// Iteration (0-based) at which the un-minimized mutant appeared.
    pub found_at: u64,
}

/// Campaign summary.
#[derive(Clone, PartialEq, Debug)]
pub struct FuzzReport {
    /// Mutants classified.
    pub iterations: u64,
    /// Distinct oracle signatures observed (the coverage metric).
    pub coverage: usize,
    /// Every signature, sorted: NPC rule-set strings, `CLEAN`, and any
    /// `CRASH:*` classes.
    pub signatures: Vec<String>,
    /// Mutants the verifier rejected with a stable diagnostic.
    pub rejected: u64,
    /// Mutants that were admitted and simulated cleanly.
    pub clean: u64,
    /// Invariant violations found (total, before per-class retention).
    pub crasher_count: u64,
    /// Minimized, deduplicated witnesses (≤ 4 per class).
    pub crashers: Vec<Crasher>,
    /// Witness streams retained in the corpus at exit.
    pub corpus_len: usize,
}

/// Seed-corpus construction failed; the zoo model or its compilation is
/// broken, which the fuzzer cannot work around.
#[derive(Clone, Debug)]
pub enum FuzzError {
    /// A zoo model failed to export.
    Export(netpu_nn::export::ExportError),
    /// A seed model failed to compile into a loadable.
    Stream(netpu_compiler::StreamError),
}

impl fmt::Display for FuzzError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FuzzError::Export(e) => write!(f, "seed model export failed: {e}"),
            FuzzError::Stream(e) => write!(f, "seed stream compile failed: {e}"),
        }
    }
}

impl std::error::Error for FuzzError {}

/// Compiles the seed corpus: structurally distinct zoo models so the
/// mutation bases cover both weight widths the paper instance serves,
/// plus a narrowed declared-input-range variant to put the NPC020 /
/// range-analysis path under fire from the start.
fn seeds() -> Result<Vec<(Vec<u64>, StreamLayout)>, FuzzError> {
    let pixels: Vec<u8> = (0..784usize)
        .map(|i| cast::lo8(cast::u64_from_usize(i)))
        .collect();
    let mut out = Vec::new();
    for zoo in [ZooModel::TfcW1A1, ZooModel::TfcW2A2] {
        let model = zoo
            .build_untrained(3, BnMode::Folded)
            .map_err(FuzzError::Export)?;
        let loadable = netpu_compiler::compile_packed(&model, &pixels, PackingMode::Lanes8)
            .map_err(FuzzError::Stream)?;
        out.push((loadable.words.clone(), loadable.layout.clone()));
        let mut narrowed = loadable;
        narrowed.set_declared_input_range(0, 255);
        out.push((narrowed.words, narrowed.layout));
    }
    // A dense-packed seed: rejected outright on instances without the
    // §V dense unpack logic, clean on those with it — so the same
    // corpus exercises both sides of a config-dependent rule from the
    // start of every sweep.
    let model = ZooModel::TfcW2A2
        .build_untrained(3, BnMode::Folded)
        .map_err(FuzzError::Export)?;
    let dense = netpu_compiler::compile_packed(&model, &pixels, PackingMode::Dense)
        .map_err(FuzzError::Stream)?;
    out.push((dense.words, dense.layout));
    Ok(out)
}

/// Runs a fuzz campaign. Deterministic in `(cfg, opts)`; the panic hook
/// is silenced for the duration (mutants are *expected* to panic the
/// simulator inside `catch_unwind` thousands of times).
pub fn run(cfg: &HwConfig, opts: &FuzzConfig) -> Result<FuzzReport, FuzzError> {
    quiet_panics(|| run_inner(cfg, opts))
}

fn run_inner(cfg: &HwConfig, opts: &FuzzConfig) -> Result<FuzzReport, FuzzError> {
    let seeds = seeds()?;
    let layout = seeds.first().map(|(_, l)| l.clone()).unwrap_or_default();
    let mut corpus = Corpus::new();
    for (words, _) in seeds {
        let sig = classify(cfg, &words).signature();
        corpus.seed(words, sig);
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut rejected = 0u64;
    let mut clean = 0u64;
    let mut crasher_count = 0u64;
    let mut crashers: Vec<Crasher> = Vec::new();

    for iteration in 0..opts.iterations {
        let base_index = rng.gen_range(0usize..corpus.len().max(1));
        let mut words = corpus.pick(base_index).to_vec();
        let stacked = rng.gen_range(1u32..=opts.max_mutations.max(1));
        for _ in 0..stacked {
            let m: Mutation = mutate::arbitrary(&mut rng, &layout, words.len());
            mutate::apply(&mut words, &m);
        }
        let verdict = classify(cfg, &words);
        match &verdict {
            Verdict::Crasher(class) => {
                crasher_count += 1;
                corpus.note(&verdict.signature(), &words);
                let minimized = minimize(cfg, words, *class);
                let kept_of_class = crashers.iter().filter(|c| c.class == *class).count();
                let duplicate = crashers
                    .iter()
                    .any(|c| c.class == *class && c.words == minimized);
                if !duplicate && kept_of_class < MAX_CRASHERS_PER_CLASS {
                    crashers.push(Crasher {
                        class: *class,
                        words: minimized,
                        found_at: iteration,
                    });
                }
            }
            Verdict::Rejected { .. } => {
                rejected += 1;
                corpus.note(&verdict.signature(), &words);
            }
            // `classify` never certifies (no source model in hand), but
            // the arm keeps the match honest for oracle extensions.
            Verdict::Clean | Verdict::Miscompile { .. } => {
                clean += 1;
                corpus.note(&verdict.signature(), &words);
            }
        }
    }

    Ok(FuzzReport {
        iterations: opts.iterations,
        coverage: corpus.coverage(),
        signatures: corpus.signatures(),
        rejected,
        clean,
        crasher_count,
        crashers,
        corpus_len: corpus.len(),
    })
}

/// Four non-default hardware instances the sweep campaigns run against
/// alongside the paper instance. Each flips a knob the NPC rule set is
/// sensitive to — accumulator width (NPC014/NPC019/NPC026 thresholds),
/// dense weight unpacking (accepts streams the paper instance
/// rejects), the Multi-Threshold precision ceiling, and ring/buffer
/// geometry — so one stream can legitimately earn different verdicts
/// on different instances.
pub fn non_default_configs() -> [HwConfig; 4] {
    let base = HwConfig::paper_instance();
    [
        HwConfig {
            accumulator_bits: 16,
            ..base
        },
        HwConfig {
            dense_weight_packing: true,
            ..base
        },
        HwConfig {
            max_multithreshold_bits: 2,
            ..base
        },
        HwConfig {
            lpus: 4,
            tnpus_per_lpu: 4,
            double_buffered_weights: true,
            ..base
        },
    ]
}

/// Two DSE-discovered instances from the `xtask dse` Pareto frontier
/// (TFC-W1A1 under the paper's Ultra96-V2 budget, see
/// `artifacts/dse/tfc-w1a1.tsv`), folded into the sweep corpus so fuzz
/// coverage tracks the configurations the search actually recommends:
/// the frontier's fastest point (double-buffered weight loading at the
/// absint-proved 11-bit accumulator width), and its cheapest point
/// still matching the paper instance's latency (a single TNPU per
/// LPU). `crates/fuzz/fixtures/sweep-configs.txt` pins the full
/// config-tagged sweep list.
pub fn dse_configs() -> [HwConfig; 2] {
    let base = HwConfig::paper_instance();
    [
        HwConfig {
            double_buffered_weights: true,
            accumulator_bits: 11,
            ..base
        },
        HwConfig {
            tnpus_per_lpu: 1,
            double_buffered_weights: true,
            accumulator_bits: 11,
            ..base
        },
    ]
}

/// Every instance [`run_sweep`] campaigns against, paper first.
pub fn sweep_configs() -> Vec<HwConfig> {
    std::iter::once(HwConfig::paper_instance())
        .chain(non_default_configs())
        .chain(dse_configs())
        .collect()
}

/// Short stable tag naming an instance in config-aware sweep
/// signatures. Lane count is tagged only when it deviates from the
/// paper's 8, so pre-DSE tags (and their recorded signatures) are
/// unchanged.
pub fn config_tag(cfg: &HwConfig) -> String {
    format!(
        "l{}x{}-acc{}-mt{}{}{}{}",
        cfg.lpus,
        cfg.tnpus_per_lpu,
        cfg.accumulator_bits,
        cfg.max_multithreshold_bits,
        if cfg.mul_lanes == 8 {
            String::new()
        } else {
            format!("-lanes{}", cfg.mul_lanes)
        },
        if cfg.dense_weight_packing {
            "-dense"
        } else {
            ""
        },
        if cfg.double_buffered_weights {
            "-dbuf"
        } else {
            ""
        },
    )
}

/// Cross-instance campaign summary.
#[derive(Clone, PartialEq, Debug)]
pub struct SweepReport {
    /// `(config tag, campaign report)` per instance, paper first.
    pub per_config: Vec<(String, FuzzReport)>,
    /// The config-aware signature union, sorted: each entry is
    /// `"<tag>|<signature>"`, so the same NPC rule set observed on two
    /// instances counts as two coverage points.
    pub signatures: Vec<String>,
}

impl SweepReport {
    /// Distinct `(instance, signature)` pairs observed.
    pub fn coverage(&self) -> usize {
        self.signatures.len()
    }
}

/// Runs the identical campaign against the paper instance, every
/// [`non_default_configs`] instance, and every [`dse_configs`]
/// instance, growing one config-aware coverage map across them.
/// Deterministic in `opts` like [`run`].
pub fn run_sweep(opts: &FuzzConfig) -> Result<SweepReport, FuzzError> {
    let mut per_config = Vec::new();
    let mut signatures = BTreeSet::new();
    for cfg in sweep_configs() {
        let report = run(&cfg, opts)?;
        let tag = config_tag(&cfg);
        for s in &report.signatures {
            signatures.insert(format!("{tag}|{s}"));
        }
        per_config.push((tag, report));
    }
    Ok(SweepReport {
        per_config,
        signatures: signatures.into_iter().collect(),
    })
}

/// Shrinks a crasher while it keeps violating the same invariant:
/// binary tail truncation, then chunked word removal with halving chunk
/// sizes (ddmin-lite), then single-word zeroing — all within a fixed
/// probe budget so a pathological witness cannot stall the campaign.
pub fn minimize(cfg: &HwConfig, words: Vec<u64>, class: CrasherClass) -> Vec<u64> {
    let target = Verdict::Crasher(class);
    let mut probes = 0usize;
    let mut still = |w: &[u64]| -> Option<bool> {
        if probes >= MINIMIZE_BUDGET {
            return None;
        }
        probes += 1;
        Some(classify(cfg, w) == target)
    };

    let mut best = words;
    // Phase 1: halve the tail while the crash survives.
    while best.len() > 1 {
        let cand = &best[..best.len() / 2];
        match still(cand) {
            Some(true) => best = cand.to_vec(),
            Some(false) => break,
            None => return best,
        }
    }
    // Phase 2: remove chunks, halving the chunk size each sweep.
    let mut chunk = (best.len() / 2).max(1);
    loop {
        let mut i = 0;
        while i + chunk <= best.len() && best.len() > 1 {
            let mut cand = best.clone();
            cand.drain(i..i + chunk);
            match still(&cand) {
                Some(true) => best = cand,
                Some(false) => i += chunk,
                None => return best,
            }
        }
        if chunk == 1 {
            break;
        }
        chunk /= 2;
    }
    // Phase 3: zero residual words to strip irrelevant payload bits.
    let mut i = 0;
    while i < best.len() {
        if best[i] != 0 {
            let mut cand = best.clone();
            cand[i] = 0;
            match still(&cand) {
                Some(true) => best = cand,
                Some(false) => {}
                None => return best,
            }
        }
        i += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaigns_are_deterministic_per_seed() {
        let cfg = HwConfig::paper_instance();
        let opts = FuzzConfig {
            seed: 11,
            iterations: 24,
            max_mutations: 3,
        };
        let a = run(&cfg, &opts).expect("seed corpus builds");
        let b = run(&cfg, &opts).expect("seed corpus builds");
        assert_eq!(a, b, "same seed must replay the same campaign");
        assert_eq!(a.iterations, 24);
        assert_eq!(a.rejected + a.clean + a.crasher_count, 24);
    }

    #[test]
    fn different_seeds_diverge() {
        let cfg = HwConfig::paper_instance();
        let mk = |seed| FuzzConfig {
            seed,
            iterations: 24,
            max_mutations: 3,
        };
        let a = run(&cfg, &mk(1)).expect("seed corpus builds");
        let b = run(&cfg, &mk(2)).expect("seed corpus builds");
        assert_ne!(
            (a.rejected, a.clean, &a.signatures),
            (b.rejected, b.clean, &b.signatures),
            "campaigns with different seeds explored identically"
        );
    }

    #[test]
    fn coverage_grows_past_the_seed_signatures() {
        let cfg = HwConfig::paper_instance();
        let r = run(
            &cfg,
            &FuzzConfig {
                seed: 3,
                iterations: 48,
                max_mutations: 3,
            },
        )
        .expect("seed corpus builds");
        assert!(
            r.coverage > 2,
            "48 mutants should fire more than the seed signatures: {:?}",
            r.signatures
        );
        assert!(
            r.signatures.iter().any(|s| s.contains("NPC")),
            "no NPC rejection signature in {:?}",
            r.signatures
        );
    }

    #[test]
    fn the_config_sweep_keys_coverage_per_instance() {
        let opts = FuzzConfig {
            seed: 5,
            iterations: 12,
            max_mutations: 3,
        };
        let sweep = run_sweep(&opts).expect("seed corpus builds");
        assert_eq!(
            sweep.per_config.len(),
            sweep_configs().len(),
            "paper + 4 non-default + 2 DSE-discovered"
        );
        let tags: BTreeSet<&str> = sweep
            .signatures
            .iter()
            .filter_map(|s| s.split('|').next())
            .collect();
        assert!(
            tags.len() >= 2,
            "sweep signatures collapsed to one instance: {:?}",
            sweep.signatures
        );
        // Config-aware coverage strictly exceeds any single campaign's.
        let best_single = sweep
            .per_config
            .iter()
            .map(|(_, r)| r.coverage)
            .max()
            .unwrap();
        assert!(sweep.coverage() > best_single);
        // The dense seed earns opposite verdicts across instances: the
        // paper instance rejects dense streams, the dense instance
        // accepts them — visible as distinct signatures for the same
        // corpus.
        assert!(sweep.per_config.iter().any(|(t, _)| t.contains("dense")));
    }

    #[test]
    fn sweep_corpus_matches_the_committed_seed_list() {
        let committed = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/fixtures/sweep-configs.txt"
        ))
        .expect("committed sweep seed list exists");
        let pinned: Vec<&str> = committed
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .collect();
        let live: Vec<String> = sweep_configs().iter().map(config_tag).collect();
        assert_eq!(
            pinned, live,
            "fixtures/sweep-configs.txt is out of date; regenerate from sweep_configs()"
        );
        for cfg in sweep_configs() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("sweep config {} invalid: {e}", config_tag(&cfg)));
        }
        let unique: BTreeSet<&String> = live.iter().collect();
        assert_eq!(unique.len(), live.len(), "duplicate sweep config tags");
    }

    #[test]
    fn minimize_preserves_the_crash_class() {
        // A synthetic "crasher": minimizing an actually-rejected stream
        // against the Rejected verdict is not expressible, so drive the
        // minimizer with a real classification target instead — an
        // empty-ish garbage stream stays NPC-rejected at every size,
        // which exercises every phase's bookkeeping without a genuine
        // soundness hole.
        let cfg = HwConfig::paper_instance();
        let garbage = vec![0xDEAD_BEEFu64; 64];
        // No crash class holds for garbage (it is simply rejected), so
        // minimize must return the input unchanged after probing.
        let out = quiet_panics(|| minimize(&cfg, garbage.clone(), CrasherClass::SimPanic));
        assert_eq!(out, garbage, "non-crashers must not shrink");
    }
}
