#![deny(missing_docs)]
//! Coverage-guided structured fuzzing for NetPU-M loadable streams.
//!
//! The serving stack's trust story (DESIGN.md §4.7) rests on one
//! invariant: **any sequence of 64-bit words handed to admission either
//! fails with a stable NPC diagnostic or runs on the accelerator model
//! without panicking.** The `check_differential` proptest suite spot-
//! checks that invariant with ~100 single mutations per CI run; this
//! crate is the same oracle industrialized:
//!
//! * [`mutate`] — a structured mutation vocabulary seeded from the
//!   proptest generators (bit flips, truncation, word smashes) and
//!   extended with layout-aware operators: section shears, packing-flag
//!   and layer-count attacks, declared-input-range rewrites.
//! * [`oracle`] — the differential judge. Classifies every mutant as
//!   `Rejected` (with its sorted NPC rule set), `Clean`, or one of four
//!   [`CrasherClass`]es: checker panic, unstable diagnostic, simulator
//!   panic behind a clean report, or false accept.
//! * [`corpus`] — semantic coverage: the map is keyed on oracle
//!   signatures (distinct NPC rule combinations), and every mutant that
//!   says something new becomes a mutation base. Also the committed
//!   fixture format (`fixtures/*.words`).
//! * [`fuzzer`] — the deterministic campaign loop plus the bounded
//!   ddmin minimizer that shrinks crashers to committable fixtures.
//!
//! The `netpu-fuzz` binary runs a campaign from the command line; CI
//! runs it as the `fuzz-smoke` stage with a pinned seed, and the
//! `regressions` test replays every committed fixture on every build.

pub mod corpus;
pub mod fuzzer;
pub mod mutate;
pub mod oracle;

pub use corpus::{words_from_text, words_to_text, Corpus, FixtureError};
pub use fuzzer::{
    config_tag, dse_configs, minimize, non_default_configs, run, run_sweep, sweep_configs, Crasher,
    FuzzConfig, FuzzError, FuzzReport, SweepReport,
};
pub use mutate::{apply, arbitrary, Mutation};
pub use oracle::{classify, classify_with_source, quiet_panics, CrasherClass, Verdict};
