//! The differential oracle: admission verdict versus simulator fate.
//!
//! The fuzzer's single invariant is the one the `check_differential`
//! proptest suite enforces at small scale: **every word stream either
//! fails admission with a stable NPC diagnostic, or runs in the tick
//! simulator without panicking or erroring.** A stream that the
//! verifier passes clean but that the simulator then rejects (or dies
//! on) is a verifier soundness hole; a verifier that panics or answers
//! differently on consecutive runs is broken outright. Each failure
//! mode is a distinct [`CrasherClass`] so minimization can preserve it.

use netpu_check::{check_words, RuleId};
use netpu_core::{run_inference_fast, HwConfig};
use netpu_nn::qmodel::QuantMlp;
use std::collections::BTreeSet;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Ways a stream can violate the fuzzer's invariant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CrasherClass {
    /// The verifier itself panicked on the stream.
    CheckerPanic,
    /// Two consecutive verifier runs produced different reports — the
    /// diagnostic is not stable, so clients cannot key on it.
    UnstableDiagnostic,
    /// The verifier passed the stream clean but the simulator panicked.
    SimPanic,
    /// The verifier passed the stream clean but the simulator returned
    /// an error: a false accept.
    FalseAccept,
}

impl CrasherClass {
    /// Stable textual name, used in fixture filenames and signatures.
    pub fn name(self) -> &'static str {
        match self {
            CrasherClass::CheckerPanic => "checker-panic",
            CrasherClass::UnstableDiagnostic => "unstable-diagnostic",
            CrasherClass::SimPanic => "sim-panic",
            CrasherClass::FalseAccept => "false-accept",
        }
    }
}

impl fmt::Display for CrasherClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The oracle's classification of one stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// The verifier rejected the stream; `rules` holds the sorted,
    /// deduplicated stable IDs of every error finding.
    Rejected {
        /// e.g. `["NPC001", "NPC005"]`.
        rules: Vec<&'static str>,
    },
    /// The verifier passed the stream and the simulator completed it.
    Clean,
    /// The stream passed the structural and range tiers and the
    /// simulator, but the translation validator proved it computes a
    /// different function than the source model it claims to implement
    /// (only [`classify_with_source`] can produce this). `rules` holds
    /// the sorted stable IDs of the equivalence-error findings.
    Miscompile {
        /// e.g. `["NPC022", "NPC024"]`.
        rules: Vec<&'static str>,
    },
    /// The invariant is violated.
    Crasher(CrasherClass),
}

impl Verdict {
    /// The verdict's coverage-map signature: rejections key on their
    /// NPC rule set so each distinct rule combination counts as new
    /// coverage, clean runs share one bucket, crashers key per class.
    pub fn signature(&self) -> String {
        match self {
            Verdict::Rejected { rules } => rules.join("+"),
            Verdict::Clean => "CLEAN".into(),
            Verdict::Miscompile { rules } => format!("MISCOMPILE:{}", rules.join("+")),
            Verdict::Crasher(class) => format!("CRASH:{class}"),
        }
    }

    /// `true` for [`Verdict::Crasher`].
    pub fn is_crasher(&self) -> bool {
        matches!(self, Verdict::Crasher(_))
    }
}

/// Classifies one stream against the invariant. Pure in `(cfg, words)`:
/// the verifier and simulator are deterministic, so equal inputs yield
/// equal verdicts — the property the corpus, the minimizer, and the
/// committed regression fixtures all rely on.
///
/// Run inside [`quiet_panics`] to keep expected simulator/checker
/// panics from spamming stderr through the default hook.
pub fn classify(cfg: &HwConfig, words: &[u64]) -> Verdict {
    let check_cfg = *cfg;
    let check_input = words.to_vec();
    let Ok(report) = catch_unwind(AssertUnwindSafe(|| check_words(&check_input, &check_cfg)))
    else {
        return Verdict::Crasher(CrasherClass::CheckerPanic);
    };
    // Diagnostics must be a pure function of the stream: clients retry
    // rejected submissions and compare NPC codes across layers.
    match catch_unwind(AssertUnwindSafe(|| check_words(words, cfg))) {
        Ok(second) if second == report => {}
        _ => return Verdict::Crasher(CrasherClass::UnstableDiagnostic),
    }
    if report.has_errors() {
        let ids: BTreeSet<&'static str> = report.errors().map(|d| d.rule.id()).collect();
        return Verdict::Rejected {
            rules: ids.into_iter().collect(),
        };
    }
    let sim_cfg = *cfg;
    let sim_input = words.to_vec();
    match catch_unwind(AssertUnwindSafe(move || {
        run_inference_fast(&sim_cfg, sim_input)
    })) {
        Err(_) => Verdict::Crasher(CrasherClass::SimPanic),
        Ok(Err(_)) => Verdict::Crasher(CrasherClass::FalseAccept),
        Ok(Ok(_)) => Verdict::Clean,
    }
}

/// [`classify`], for mutants whose claimed source model is in hand:
/// streams that survive the two structural/range tiers and the
/// simulator are additionally put through the `netpu-check::symex`
/// translation validator against `source`. A proven inequivalence
/// downgrades `Clean` to [`Verdict::Miscompile`]; the validator
/// panicking, or disagreeing with itself across two runs, violates the
/// fuzzer's invariant exactly like the earlier tiers doing so.
pub fn classify_with_source(cfg: &HwConfig, words: &[u64], source: &QuantMlp) -> Verdict {
    let verdict = classify(cfg, words);
    if verdict != Verdict::Clean {
        return verdict;
    }
    let Ok(outcome) = catch_unwind(AssertUnwindSafe(|| {
        netpu_check::certify(source, words, cfg)
    })) else {
        return Verdict::Crasher(CrasherClass::CheckerPanic);
    };
    // Certification must be a pure function of (model, stream, cfg):
    // the certificate digest is what admission layers cache on.
    match catch_unwind(AssertUnwindSafe(|| {
        netpu_check::certify(source, words, cfg)
    })) {
        Ok(second) if second.report == outcome.report => {}
        _ => return Verdict::Crasher(CrasherClass::UnstableDiagnostic),
    }
    if outcome.report.has_equiv_errors() {
        let ids: BTreeSet<&'static str> = outcome
            .report
            .errors()
            .filter(|d| d.rule.is_equiv())
            .map(|d| d.rule.id())
            .collect();
        return Verdict::Miscompile {
            rules: ids.into_iter().collect(),
        };
    }
    Verdict::Clean
}

/// The sorted error-rule IDs of a rejection, if `v` is one.
pub fn rejection_rules(v: &Verdict) -> Option<&[&'static str]> {
    match v {
        Verdict::Rejected { rules } => Some(rules),
        _ => None,
    }
}

/// Runs `f` with the panic hook silenced, restoring the previous hook
/// afterwards (even if `f` itself unwinds). The fuzzer expects to
/// trigger thousands of *caught* panics; the default hook would print a
/// backtrace banner for every one.
pub fn quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    type Hook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send + 'static>;
    struct Restore(Option<Hook>);
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(prev) = self.0.take() {
                std::panic::set_hook(prev);
            }
        }
    }
    let guard = Restore(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    drop(guard);
    out
}

/// `RuleId` re-surfaced so fixture tests can assert on specific rules
/// without importing `netpu-check` directly.
pub type Rule = RuleId;

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use std::sync::Mutex;

    /// The panic hook is process-global; tests that swap it (or expect
    /// panics) serialize here so the multi-threaded harness cannot
    /// interleave their install/restore pairs.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    fn seed_words() -> Vec<u64> {
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .expect("zoo model builds");
        netpu_compiler::compile(&model, &vec![0u8; 784])
            .expect("seed compiles")
            .words
    }

    #[test]
    fn a_compiled_seed_classifies_clean() {
        let cfg = HwConfig::paper_instance();
        assert_eq!(classify(&cfg, &seed_words()), Verdict::Clean);
    }

    #[test]
    fn a_flipped_magic_bit_rejects_with_npc001() {
        let cfg = HwConfig::paper_instance();
        let mut words = seed_words();
        words[0] ^= 1;
        let v = classify(&cfg, &words);
        let rules = rejection_rules(&v).expect("flipped magic must reject");
        assert!(rules.contains(&"NPC001"), "{rules:?}");
        assert_eq!(v.signature(), rules.join("+"));
    }

    #[test]
    fn an_empty_stream_rejects_not_crashes() {
        let _serial = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = HwConfig::paper_instance();
        let v = quiet_panics(|| classify(&cfg, &[]));
        assert!(!v.is_crasher(), "empty stream produced {v:?}");
        assert!(rejection_rules(&v).is_some(), "empty stream was {v:?}");
    }

    #[test]
    fn a_forged_stream_classifies_as_miscompile() {
        let _serial = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let cfg = HwConfig::paper_instance();
        let model = ZooModel::TfcW1A1
            .build_untrained(1, BnMode::Folded)
            .expect("zoo model builds");
        let mut forged = model.clone();
        let w = &mut forged.hidden[0].weights;
        let i = (0..w.len() - 1)
            .find(|&i| w[i] != w[i + 1])
            .expect("untrained weights vary");
        w.swap(i, i + 1);
        let bad = netpu_compiler::compile(&forged, &vec![0u8; 784])
            .expect("forged model compiles")
            .words;

        // Plain classification cannot see the forgery…
        assert_eq!(quiet_panics(|| classify(&cfg, &bad)), Verdict::Clean);
        // …the source-aware oracle can.
        let v = quiet_panics(|| classify_with_source(&cfg, &bad, &model));
        match &v {
            Verdict::Miscompile { rules } => assert!(rules.contains(&"NPC022"), "{rules:?}"),
            other => panic!("expected Miscompile, got {other:?}"),
        }
        assert!(v.signature().starts_with("MISCOMPILE:"));
        // The honest stream passes all three tiers.
        assert_eq!(
            quiet_panics(|| classify_with_source(&cfg, &seed_words(), &model)),
            Verdict::Clean
        );
    }

    #[test]
    fn signatures_distinguish_outcome_classes() {
        assert_eq!(Verdict::Clean.signature(), "CLEAN");
        assert_eq!(
            Verdict::Crasher(CrasherClass::SimPanic).signature(),
            "CRASH:sim-panic"
        );
        let r = Verdict::Rejected {
            rules: vec!["NPC002", "NPC005"],
        };
        assert_eq!(r.signature(), "NPC002+NPC005");
    }

    #[test]
    fn quiet_panics_restores_the_previous_hook() {
        // Install a recognizable hook, silence inside, then confirm the
        // recognizable hook survived the round-trip by replacing it.
        let _serial = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let flag = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = flag.clone();
        std::panic::set_hook(Box::new(move |_| {
            f2.store(true, std::sync::atomic::Ordering::SeqCst);
        }));
        quiet_panics(|| {
            let _ = catch_unwind(|| panic!("silenced"));
        });
        assert!(
            !flag.load(std::sync::atomic::Ordering::SeqCst),
            "hook ran while silenced"
        );
        let _ = catch_unwind(|| panic!("audible"));
        assert!(
            flag.load(std::sync::atomic::Ordering::SeqCst),
            "previous hook was not restored"
        );
        let _ = std::panic::take_hook();
    }
}
