//! Structured mutations over loadable word streams.
//!
//! The mutation vocabulary generalizes the proptest corpus the
//! `check_differential` suite has run since the verifier landed
//! (bit flips, truncation, word smashes) with *layout-aware* operators:
//! the generator knows the seed stream's [`StreamLayout`] and biases
//! bit-level damage toward the header/settings region where one flipped
//! bit changes the decoded structure, while the structural operators
//! (remove / duplicate / swap / splice) shear whole sections out of
//! alignment the way a buggy host-side framer would.

use netpu_arith::cast;
use netpu_compiler::StreamLayout;
use rand::rngs::StdRng;
use rand::Rng;
use std::fmt;
use std::ops::Range;

/// Header bit 40: the weight packing flag (`PackingMode::Dense`).
const PACKING_BIT: u64 = 1 << 40;
/// Header bit 41: declared-input-range-present flag.
const RANGE_FLAG: u64 = 1 << 41;
/// Header bits 42..50 / 50..58: declared min / max input pixel.
const RANGE_MIN_SHIFT: u32 = 42;
/// See [`RANGE_MIN_SHIFT`].
const RANGE_MAX_SHIFT: u32 = 50;
/// Header bits 24..32: the layer count field.
const LAYER_COUNT_SHIFT: u32 = 24;

/// One structured edit of a word stream.
///
/// Word indices are taken modulo the stream length at application time,
/// so a mutation minted against one stream stays applicable after other
/// mutations have resized it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Mutation {
    /// Flip a single bit.
    FlipBit {
        /// Target word (modulo stream length).
        word: usize,
        /// Bit position (modulo 64).
        bit: u32,
    },
    /// Overwrite a word with an arbitrary value.
    SmashWord {
        /// Target word (modulo stream length).
        word: usize,
        /// Replacement value.
        value: u64,
    },
    /// Drop the stream's tail, keeping `keep` words.
    Truncate {
        /// Words to keep (modulo stream length).
        keep: usize,
    },
    /// Append `extra` copies of `value` past the declared end.
    ExtendTail {
        /// Words to append (kept small by the generator).
        extra: usize,
        /// Fill value.
        value: u64,
    },
    /// Remove one word, shearing every later section left by one.
    RemoveWord {
        /// Target word (modulo stream length).
        word: usize,
    },
    /// Insert a copy of a word after itself, shearing sections right.
    DuplicateWord {
        /// Target word (modulo stream length).
        word: usize,
    },
    /// Exchange two words across section boundaries.
    SwapWords {
        /// First word (modulo stream length).
        a: usize,
        /// Second word (modulo stream length).
        b: usize,
    },
    /// Rewrite the header's declared input range metadata (bits 41..58).
    DeclareRange {
        /// Declared minimum pixel value.
        min: u8,
        /// Declared maximum pixel value.
        max: u8,
    },
    /// Flip the header's weight packing flag (bit 40).
    FlipPackingFlag,
    /// Overwrite the header's layer-count field (bits 24..32).
    SmashLayerCount {
        /// Replacement layer count.
        count: u8,
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::FlipBit { word, bit } => write!(f, "flip w{word}b{bit}"),
            Mutation::SmashWord { word, value } => write!(f, "smash w{word}={value:#x}"),
            Mutation::Truncate { keep } => write!(f, "truncate to {keep}"),
            Mutation::ExtendTail { extra, value } => write!(f, "extend +{extra}x{value:#x}"),
            Mutation::RemoveWord { word } => write!(f, "remove w{word}"),
            Mutation::DuplicateWord { word } => write!(f, "dup w{word}"),
            Mutation::SwapWords { a, b } => write!(f, "swap w{a}<->w{b}"),
            Mutation::DeclareRange { min, max } => write!(f, "declare range {min}..={max}"),
            Mutation::FlipPackingFlag => f.write_str("flip packing flag"),
            Mutation::SmashLayerCount { count } => write!(f, "layer count = {count}"),
        }
    }
}

/// Applies `m` to `words` in place. A no-op on empty streams except for
/// [`Mutation::ExtendTail`], which can regrow one.
pub fn apply(words: &mut Vec<u64>, m: &Mutation) {
    let len = words.len();
    match *m {
        Mutation::FlipBit { word, bit } => {
            if len > 0 {
                words[word % len] ^= 1u64 << (bit % 64);
            }
        }
        Mutation::SmashWord { word, value } => {
            if len > 0 {
                words[word % len] = value;
            }
        }
        Mutation::Truncate { keep } => {
            if len > 0 {
                words.truncate(keep % len);
            }
        }
        Mutation::ExtendTail { extra, value } => {
            words.extend(std::iter::repeat_n(value, extra));
        }
        Mutation::RemoveWord { word } => {
            if len > 0 {
                words.remove(word % len);
            }
        }
        Mutation::DuplicateWord { word } => {
            if len > 0 {
                let at = word % len;
                let v = words[at];
                words.insert(at, v);
            }
        }
        Mutation::SwapWords { a, b } => {
            if len > 0 {
                words.swap(a % len, b % len);
            }
        }
        Mutation::DeclareRange { min, max } => {
            if len > 0 {
                let keep_mask =
                    !(RANGE_FLAG | (0xFFu64 << RANGE_MIN_SHIFT) | (0xFFu64 << RANGE_MAX_SHIFT));
                words[0] = (words[0] & keep_mask)
                    | RANGE_FLAG
                    | (u64::from(min) << RANGE_MIN_SHIFT)
                    | (u64::from(max) << RANGE_MAX_SHIFT);
            }
        }
        Mutation::FlipPackingFlag => {
            if len > 0 {
                words[0] ^= PACKING_BIT;
            }
        }
        Mutation::SmashLayerCount { count } => {
            if len > 0 {
                words[0] = (words[0] & !(0xFFu64 << LAYER_COUNT_SHIFT))
                    | (u64::from(count) << LAYER_COUNT_SHIFT);
            }
        }
    }
}

/// Region of a seed stream a mutation aims at, derived from the seed's
/// [`StreamLayout`]. Mutated descendants keep using the seed's section
/// map as an *approximate* targeting bias — the point of the structural
/// operators is precisely to make the map lie.
#[derive(Clone, Copy, Debug)]
enum Region {
    Header,
    Settings,
    Input,
    Payload,
    Anywhere,
}

fn region_range(region: Region, layout: &StreamLayout, len: usize) -> Range<usize> {
    let clamp = |r: &Range<usize>| -> Range<usize> {
        let start = r.start.min(len.saturating_sub(1));
        let end = r.end.min(len).max(start + 1);
        start..end
    };
    if len == 0 {
        return 0..1;
    }
    match region {
        Region::Header => clamp(&layout.header),
        Region::Settings => clamp(&layout.settings),
        Region::Input => clamp(&layout.input),
        Region::Payload => {
            let start = layout
                .sections
                .first()
                .map(|(_, _, r)| r.start)
                .unwrap_or(0);
            clamp(&(start..len))
        }
        Region::Anywhere => 0..len,
    }
}

/// Draws one structured mutation for a stream of `len` words, biased by
/// the seed stream's section map: ~half the draws land bit-level damage
/// in the header/settings/input words (where single bits change the
/// decoded structure), the rest shear sections or attack specific
/// header fields.
pub fn arbitrary(rng: &mut StdRng, layout: &StreamLayout, len: usize) -> Mutation {
    let pick_word = |rng: &mut StdRng, region: Region| -> usize {
        let r = region_range(region, layout, len);
        rng.gen_range(r)
    };
    match rng.gen_range(0u32..100) {
        // Bit flips: header 15, settings 15, input 5, payload 15.
        0..=14 => Mutation::FlipBit {
            word: pick_word(rng, Region::Header),
            bit: rng.gen_range(0u32..64),
        },
        15..=29 => Mutation::FlipBit {
            word: pick_word(rng, Region::Settings),
            bit: rng.gen_range(0u32..64),
        },
        30..=34 => Mutation::FlipBit {
            word: pick_word(rng, Region::Input),
            bit: rng.gen_range(0u32..64),
        },
        35..=49 => Mutation::FlipBit {
            word: pick_word(rng, Region::Payload),
            bit: rng.gen_range(0u32..64),
        },
        // Word smashes, anywhere.
        50..=59 => Mutation::SmashWord {
            word: pick_word(rng, Region::Anywhere),
            value: rng.gen(),
        },
        // Length shear: truncate / extend / remove / duplicate / swap.
        60..=67 => Mutation::Truncate {
            keep: pick_word(rng, Region::Anywhere),
        },
        68..=72 => Mutation::ExtendTail {
            extra: rng.gen_range(1usize..=8),
            value: rng.gen(),
        },
        73..=79 => Mutation::RemoveWord {
            word: pick_word(rng, Region::Anywhere),
        },
        80..=84 => Mutation::DuplicateWord {
            word: pick_word(rng, Region::Anywhere),
        },
        85..=89 => Mutation::SwapWords {
            a: pick_word(rng, Region::Settings),
            b: pick_word(rng, Region::Payload),
        },
        // Header field attacks.
        90..=94 => Mutation::DeclareRange {
            min: cast::lo8(rng.gen::<u64>()),
            max: cast::lo8(rng.gen::<u64>()),
        },
        95..=96 => Mutation::FlipPackingFlag,
        _ => Mutation::SmashLayerCount {
            count: cast::lo8(rng.gen::<u64>()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn apply_is_total_on_empty_streams() {
        let mut empty: Vec<u64> = Vec::new();
        for m in [
            Mutation::FlipBit { word: 3, bit: 70 },
            Mutation::SmashWord { word: 1, value: 9 },
            Mutation::Truncate { keep: 5 },
            Mutation::RemoveWord { word: 0 },
            Mutation::DuplicateWord { word: 0 },
            Mutation::SwapWords { a: 0, b: 1 },
            Mutation::DeclareRange { min: 3, max: 200 },
            Mutation::FlipPackingFlag,
            Mutation::SmashLayerCount { count: 9 },
        ] {
            apply(&mut empty, &m);
            assert!(empty.is_empty(), "{m} resized an empty stream");
        }
        apply(&mut empty, &Mutation::ExtendTail { extra: 2, value: 7 });
        assert_eq!(empty, vec![7, 7]);
    }

    #[test]
    fn indices_wrap_modulo_length() {
        let mut words = vec![0u64, 0, 0];
        apply(&mut words, &Mutation::FlipBit { word: 4, bit: 65 });
        assert_eq!(words, vec![0, 2, 0], "word 4 % 3 == 1, bit 65 % 64 == 1");
    }

    #[test]
    fn declare_range_sets_flag_and_fields() {
        let mut words = vec![0u64];
        apply(&mut words, &Mutation::DeclareRange { min: 5, max: 250 });
        assert_eq!(
            netpu_compiler::declared_input_range(words[0]),
            Some((5, 250))
        );
        // Idempotent: re-declaring replaces, not accumulates.
        apply(&mut words, &Mutation::DeclareRange { min: 0, max: 1 });
        assert_eq!(netpu_compiler::declared_input_range(words[0]), Some((0, 1)));
    }

    #[test]
    fn structural_mutations_resize_by_exactly_one() {
        let mut words = vec![1u64, 2, 3, 4];
        apply(&mut words, &Mutation::RemoveWord { word: 1 });
        assert_eq!(words, vec![1, 3, 4]);
        apply(&mut words, &Mutation::DuplicateWord { word: 2 });
        assert_eq!(words, vec![1, 3, 4, 4]);
    }

    #[test]
    fn arbitrary_draws_are_deterministic_per_seed() {
        let layout = StreamLayout {
            header: 0..1,
            settings: 1..4,
            input: 4..10,
            sections: vec![(netpu_compiler::SectionKind::Params, 0, 10..14)],
        };
        let draw = |seed: u64| -> Vec<Mutation> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| arbitrary(&mut rng, &layout, 14)).collect()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10), "different seeds should diverge");
    }
}
