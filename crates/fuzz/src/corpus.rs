//! The coverage corpus and the on-disk fixture format.
//!
//! Coverage is *semantic*, not branch-based: the map is keyed on the
//! oracle's [`signature`](crate::oracle::Verdict::signature) — the
//! sorted set of NPC rule IDs a rejection fired (or `CLEAN`, or a
//! crasher class). A mutant that makes the verifier say something it
//! has not said before joins the corpus and becomes a base for further
//! mutation; mutants that re-cover known signatures are discarded. This
//! drives the fuzzer toward the rule combinations and decode paths it
//! has not yet exercised, which is what "coverage-guided" can soundly
//! mean for a pure decision procedure with stable output.

use std::collections::BTreeSet;
use std::fmt;

/// Upper bound on retained corpus entries; signatures past the cap
/// still count as coverage but their witness streams are not kept.
const MAX_ENTRIES: usize = 256;

/// The live corpus: witness streams plus the set of signatures seen.
#[derive(Debug, Default)]
pub struct Corpus {
    entries: Vec<Vec<u64>>,
    seen: BTreeSet<String>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Adds a seed stream unconditionally (seeds are corpus members
    /// even though they all share the `CLEAN` signature).
    pub fn seed(&mut self, words: Vec<u64>, signature: String) {
        self.entries.push(words);
        self.seen.insert(signature);
    }

    /// Records an observed `(signature, stream)` pair. Returns `true`
    /// when the signature is new coverage, in which case the stream is
    /// retained as a mutation base (up to [`MAX_ENTRIES`]).
    pub fn note(&mut self, signature: &str, words: &[u64]) -> bool {
        if !self.seen.insert(signature.to_string()) {
            return false;
        }
        if self.entries.len() < MAX_ENTRIES {
            self.entries.push(words.to_vec());
        }
        true
    }

    /// The `index`-th retained stream, modulo the corpus size.
    pub fn pick(&self, index: usize) -> &[u64] {
        // Seeds are inserted before any fuzz loop runs, so the corpus
        // is never empty when `pick` is called; guard anyway.
        static EMPTY: &[u64] = &[];
        if self.entries.is_empty() {
            return EMPTY;
        }
        &self.entries[index % self.entries.len()]
    }

    /// Number of retained witness streams.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no streams are retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every signature observed, in sorted order.
    pub fn signatures(&self) -> Vec<String> {
        self.seen.iter().cloned().collect()
    }

    /// Number of distinct signatures observed.
    pub fn coverage(&self) -> usize {
        self.seen.len()
    }
}

/// A fixture file failed to parse.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixtureError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// The offending text.
    pub text: String,
}

impl fmt::Display for FixtureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fixture line {}: bad word {:?}", self.line, self.text)
    }
}

impl std::error::Error for FixtureError {}

/// Serializes a stream as the fixture text format: one `0x`-prefixed
/// 16-digit hex word per line. Lines starting with `#` and blank lines
/// are comments; [`words_from_text`] skips them.
pub fn words_to_text(words: &[u64]) -> String {
    let mut out = String::with_capacity(words.len() * 19);
    for w in words {
        out.push_str(&format!("{w:#018x}\n"));
    }
    out
}

/// Parses the fixture text format back into a stream.
pub fn words_from_text(text: &str) -> Result<Vec<u64>, FixtureError> {
    let mut words = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let digits = line.strip_prefix("0x").unwrap_or(line);
        match u64::from_str_radix(digits, 16) {
            Ok(w) => words.push(w),
            Err(_) => {
                return Err(FixtureError {
                    line: i + 1,
                    text: line.to_string(),
                })
            }
        }
    }
    Ok(words)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_counts_only_new_signatures() {
        let mut c = Corpus::new();
        c.seed(vec![1, 2, 3], "CLEAN".into());
        assert!(c.note("NPC001", &[9]));
        assert!(!c.note("NPC001", &[10]), "repeat signature is not new");
        assert!(!c.note("CLEAN", &[11]), "seed signature already covered");
        assert_eq!(c.coverage(), 2);
        assert_eq!(c.len(), 2, "only new-coverage witnesses retained");
        assert_eq!(c.signatures(), vec!["CLEAN", "NPC001"]);
    }

    #[test]
    fn pick_wraps_and_tolerates_empty() {
        let mut c = Corpus::new();
        assert_eq!(c.pick(7), &[] as &[u64]);
        c.seed(vec![5], "CLEAN".into());
        c.seed(vec![6], "CLEAN2".into());
        assert_eq!(c.pick(0), &[5]);
        assert_eq!(c.pick(3), &[6]);
    }

    #[test]
    fn fixture_text_round_trips() {
        let words = vec![0u64, u64::MAX, 0x4E50_1234_5678_9ABC];
        let text = words_to_text(&words);
        assert_eq!(words_from_text(&text), Ok(words));
    }

    #[test]
    fn fixture_parser_skips_comments_and_reports_bad_lines() {
        let ok = "# crasher: sim-panic, seed 7\n\n0x0000000000000001\n1f\n";
        assert_eq!(words_from_text(ok), Ok(vec![1, 0x1f]));
        let bad = "0x01\nnot-hex\n";
        let err = words_from_text(bad).expect_err("must reject");
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("not-hex"));
    }

    #[test]
    fn retention_caps_but_coverage_does_not() {
        let mut c = Corpus::new();
        for i in 0..400u64 {
            c.note(&format!("SIG{i}"), &[i]);
        }
        assert_eq!(c.coverage(), 400);
        assert_eq!(c.len(), super::MAX_ENTRIES);
    }
}
