//! The measured saturation throughput of a 4-board server must match
//! the analytic `ClusterThroughput` bound: TFC-W1A1 re-streams its
//! weights every inference, so four boards saturate the shared DMA and
//! throughput pins to the transfer bound (the §V loading bottleneck at
//! system scale).

use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Cluster, Driver, InferRequest};
use netpu_serve::{Server, ServerConfig};

#[test]
fn four_boards_saturate_at_the_analytic_transfer_bound() {
    let driver = Driver::builder().build();
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let analytic = Cluster::new(4, driver.clone()).throughput(&model).unwrap();
    assert!(
        (analytic.fps - analytic.transfer_bound_fps).abs() < 1e-9,
        "TFC-W1A1 on 4 boards should be transfer-bound: {analytic:?}"
    );

    let loadable = netpu_compiler::compile(&model, &vec![100u8; 784]).unwrap();
    let n = 128usize;
    let server = Server::start(
        driver,
        ServerConfig {
            boards: 4,
            queue_capacity: n,
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = (0..n)
        .map(|_| {
            server
                .submit(InferRequest::loadable(loadable.clone()))
                .expect_accepted()
        })
        .collect();
    for t in tickets {
        let served = t.wait().unwrap();
        assert!(served.board < 4);
        assert_eq!(served.attempts, 1);
    }
    let m = server.shutdown();
    assert_eq!(m.completed, n as u64);
    assert_eq!((m.rejected, m.failed, m.timed_out), (0, 0, 0));

    let measured = m.measured_fps().expect("completed frames");
    let rel = (measured - analytic.fps).abs() / analytic.fps;
    assert!(
        rel < 0.05,
        "measured {measured:.0} fps vs analytic {:.0} fps ({:.1}% off)",
        analytic.fps,
        rel * 100.0
    );
    // Saturation shows in the utilization profile: the DMA is (almost)
    // always streaming while every board has idle gaps.
    assert!(
        m.dma_utilization() > 0.9,
        "dma util {}",
        m.dma_utilization()
    );
    for (b, util) in m.board_utilization().iter().enumerate() {
        assert!(
            (0.1..0.999).contains(util),
            "board {b} utilization {util} out of the transfer-bound range"
        );
    }
    // Per-board busy time splits the work roughly evenly.
    let busy = &m.per_board_busy_us;
    let (min, max) = busy.iter().fold((f64::INFINITY, 0.0f64), |(lo, hi), &b| {
        (lo.min(b), hi.max(b))
    });
    assert!(max < 2.0 * min, "board busy skew: {busy:?}");
}
