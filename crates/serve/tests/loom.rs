#![cfg(loom)]
//! Model-checked concurrency invariants of the admission queue
//! (`RUSTFLAGS="--cfg loom" cargo test -p netpu-serve --test loom`).
//!
//! Under `--cfg loom`, [`BoundedQueue`] is built on the `loom` shim's
//! schedule-perturbed primitives, and each test body is replayed across
//! many interleavings by `loom::model`. Two invariants:
//!
//! * **queue bound** — concurrent producers can never push the queue
//!   past its capacity; overflow is always answered with explicit
//!   backpressure, and with no consumers exactly `capacity` pushes win.
//! * **no lost wakeups** — every accepted item is served exactly once,
//!   and closing the queue wakes every blocked consumer (a lost wakeup
//!   would hang a consumer forever and trip the model's watchdog).
//!
//! A third check covers the worker → shared-DMA handoff: however the
//! workers interleave their grants, the virtual-time schedule never
//! overlaps two transfers on the one DMA engine.

use loom::sync::{Arc, Mutex};
use loom::thread;
use netpu_serve::queue::{BoundedQueue, Push};
use netpu_serve::DmaArbiter;

#[test]
fn concurrent_pushes_never_exceed_the_bound() {
    loom::model(|| {
        const CAPACITY: usize = 2;
        let q = Arc::new(BoundedQueue::new(CAPACITY));
        let producers: Vec<_> = (0..3)
            .map(|p| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut accepted = 0usize;
                    for i in 0..2 {
                        match q.push((p, i)) {
                            Push::Accepted { depth } => {
                                assert!(depth <= CAPACITY, "bound exceeded: depth {depth}");
                                accepted += 1;
                            }
                            Push::Full { len } => assert_eq!(len, CAPACITY),
                            Push::Closed => panic!("queue was never closed"),
                        }
                    }
                    accepted
                })
            })
            .collect();
        let accepted: usize = producers.into_iter().map(|h| h.join().unwrap()).sum();
        // Nothing consumes, so exactly the first `CAPACITY` pushes win
        // regardless of interleaving.
        assert_eq!(accepted, CAPACITY);
        assert_eq!(q.len(), CAPACITY);
    });
}

#[test]
fn close_wakes_every_consumer_and_loses_no_items() {
    loom::model(|| {
        const ITEMS: usize = 4;
        let q = Arc::new(BoundedQueue::new(8));
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut served = 0usize;
                    while q.pop_wait().is_some() {
                        served += 1;
                    }
                    served
                })
            })
            .collect();
        let producer = {
            let q = Arc::clone(&q);
            thread::spawn(move || {
                for i in 0..ITEMS {
                    assert!(matches!(q.push(i), Push::Accepted { .. }));
                }
                q.close();
            })
        };
        producer.join().unwrap();
        // Both consumers returning proves the close wakeup reached
        // every waiter; the sum proves each item was served once.
        let served: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(served, ITEMS);
        assert!(q.is_empty());
    });
}

#[test]
fn arbiter_handoff_never_overlaps_dma_transfers() {
    loom::model(|| {
        const TRANSFER_US: f64 = 10.0;
        let arbiter = Arc::new(Mutex::new(DmaArbiter::new(2)));
        let workers: Vec<_> = (0..3)
            .map(|_| {
                let arbiter = Arc::clone(&arbiter);
                thread::spawn(move || {
                    let mut grants = Vec::new();
                    for _ in 0..2 {
                        let g = arbiter
                            .lock()
                            .unwrap()
                            .grant(0.0, TRANSFER_US, 3.0 * TRANSFER_US);
                        grants.push(g);
                    }
                    grants
                })
            })
            .collect();
        let mut grants: Vec<_> = workers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        // Transfers serialize on the one DMA engine: sorted by start,
        // each transfer begins no earlier than the previous one ends,
        // and the engine's busy time is exactly the sum of transfers.
        grants.sort_by(|a, b| a.start_us.total_cmp(&b.start_us));
        for pair in grants.windows(2) {
            assert!(
                pair[1].start_us >= pair[0].transfer_end_us - 1e-9,
                "overlapping DMA transfers: {pair:?}"
            );
        }
        let busy = arbiter.lock().unwrap().dma_busy_us();
        assert!((busy - grants.len() as f64 * TRANSFER_US).abs() < 1e-9);
    });
}
