//! Deadline and retry behavior under injected stream faults, reusing
//! the robustness suite's corruption model (a flipped stream bit the
//! accelerator's own header validation catches).

use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, DriverError, InferRequest};
use netpu_serve::{FaultPlan, RejectReason, Server, ServerConfig};

fn loadable() -> netpu_compiler::Loadable {
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    netpu_compiler::compile(&model, &vec![100u8; 784]).unwrap()
}

#[test]
fn retries_recover_from_transient_stream_faults() {
    let n = 6u64;
    let server = Server::start(
        Driver::builder().build(),
        ServerConfig {
            boards: 2,
            max_retries: 2,
            faults: FaultPlan::FailFirstAttempts(1),
            ..ServerConfig::default()
        },
    );
    let l = loadable();
    let tickets: Vec<_> = (0..n)
        .map(|_| {
            server
                .submit(InferRequest::loadable(l.clone()))
                .expect_accepted()
        })
        .collect();
    for t in tickets {
        let served = t.wait().expect("retry should recover");
        assert_eq!(served.attempts, 2, "first attempt must have failed");
    }
    let m = server.shutdown();
    assert_eq!(m.completed, n);
    assert_eq!(m.retried, n, "one retry per request");
    assert_eq!(m.failed, 0);
    // The wasted first transfers charged the shared DMA: busy time
    // covers 2n transfers, not n.
    let per_transfer = Driver::builder().build().dma.occupancy_us(l.len(), 100.0);
    assert!(
        (m.dma_busy_us - 2.0 * n as f64 * per_transfer).abs() < 1e-6,
        "dma busy {} vs expected {}",
        m.dma_busy_us,
        2.0 * n as f64 * per_transfer
    );
}

#[test]
fn exhausted_retries_fail_with_the_preflight_report() {
    let server = Server::start(
        Driver::builder().build(),
        ServerConfig {
            max_retries: 1,
            faults: FaultPlan::FailFirstAttempts(5),
            ..ServerConfig::default()
        },
    );
    let ticket = server
        .submit(InferRequest::loadable(loadable()))
        .expect_accepted();
    match ticket.wait() {
        // The corrupted header is caught by the static pre-flight in
        // `Driver::run` before any simulation is paid for; exhausting
        // the retry budget surfaces that unified rejection.
        Err(DriverError::Rejected(RejectReason::Invalid { report })) => {
            assert!(report.has_errors(), "pre-flight report carried no errors");
        }
        other => panic!("expected a pre-flight check error, got {other:?}"),
    }
    let m = server.shutdown();
    assert_eq!((m.completed, m.failed, m.retried), (0, 1, 1));
}

#[test]
fn per_request_retry_budget_overrides_the_server_default() {
    let server = Server::start(
        Driver::builder().build(),
        ServerConfig {
            max_retries: 0,
            faults: FaultPlan::FailFirstAttempts(1),
            ..ServerConfig::default()
        },
    );
    let no_budget = server
        .submit(InferRequest::loadable(loadable()))
        .expect_accepted();
    let with_budget = server
        .submit(InferRequest::loadable(loadable()).with_retries(3))
        .expect_accepted();
    assert!(no_budget.wait().is_err());
    assert_eq!(with_budget.wait().unwrap().attempts, 2);
    let m = server.shutdown();
    assert_eq!((m.completed, m.failed), (1, 1));
}

#[test]
fn queued_requests_behind_a_slow_board_miss_their_deadline() {
    let driver = Driver::builder().build();
    let l = loadable();
    let single_us = driver.run_loadable(&l).unwrap().measured_latency_us;
    // One board serves in queue order at one request per `single_us` of
    // virtual time: a deadline of ~3.5 L admits exactly 3 completions.
    let server = Server::start(
        driver,
        ServerConfig {
            boards: 1,
            queue_capacity: 16,
            default_deadline_us: Some(3.5 * single_us),
            ..ServerConfig::default()
        },
    );
    let tickets: Vec<_> = (0..8)
        .map(|_| {
            server
                .submit(InferRequest::loadable(l.clone()))
                .expect_accepted()
        })
        .collect();
    let mut outcomes = Vec::new();
    for t in tickets {
        outcomes.push(t.wait());
    }
    let m = server.shutdown();
    assert_eq!(m.completed, 3, "deadline should admit exactly 3: {m:?}");
    assert_eq!(m.timed_out, 5);
    for (k, outcome) in outcomes.iter().enumerate() {
        if k < 3 {
            assert!(outcome.is_ok(), "request {k} should make the deadline");
        } else {
            assert!(
                matches!(outcome, Err(DriverError::Timeout { .. })),
                "request {k} should time out, got {outcome:?}"
            );
        }
    }
    // Histogram recorded only the completed requests.
    let counted: u64 = m.latency_histogram.iter().map(|&(_, c)| c).sum();
    assert_eq!(counted, 3);
}
