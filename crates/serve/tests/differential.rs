//! A one-board server must be *exactly* the driver: same classes, same
//! MeasuredRun numbers, for every model in the zoo. The serving layer
//! adds scheduling around the simulation — never a different answer.

use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, InferRequest};
use netpu_serve::{Server, ServerConfig};
use std::sync::Arc;

#[test]
fn one_board_server_reproduces_the_driver_across_the_zoo() {
    let driver = Driver::builder().build();
    let server = Server::start(driver.clone(), ServerConfig::default());
    let mut expected = Vec::new();
    let mut tickets = Vec::new();
    for (i, zoo) in ZooModel::ALL.iter().enumerate() {
        let model = Arc::new(zoo.build_untrained(i as u64 + 1, BnMode::Folded).unwrap());
        let pixels = vec![(i * 37) as u8; model.input.len];
        let direct = driver
            .run(InferRequest::single(model.as_ref(), pixels.clone()))
            .unwrap();
        expected.push((zoo.name(), direct));
        tickets.push(
            server
                .submit(InferRequest::single(model, pixels))
                .expect_accepted(),
        );
    }
    for (ticket, (name, direct)) in tickets.into_iter().zip(expected) {
        let served = ticket.wait().unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(served.response, direct, "{name} diverged");
        assert_eq!(served.attempts, 1, "{name} retried unexpectedly");
        assert_eq!(served.board, 0);
    }
    let m = server.shutdown();
    assert_eq!(m.accepted, ZooModel::ALL.len() as u64);
    assert_eq!(m.completed, ZooModel::ALL.len() as u64);
    assert_eq!((m.rejected, m.failed, m.retried, m.timed_out), (0, 0, 0, 0));
}

#[test]
fn served_batches_match_driver_batches() {
    let driver = Driver::builder().build();
    let model = Arc::new(
        ZooModel::TfcW1A1
            .build_untrained(3, BnMode::Folded)
            .unwrap(),
    );
    let inputs: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i * 11; 784]).collect();
    let direct = driver
        .run(InferRequest::batch(model.as_ref(), inputs.clone()))
        .unwrap();
    let server = Server::start(driver, ServerConfig::default());
    let served = server
        .submit(InferRequest::batch(model, inputs))
        .expect_accepted()
        .wait()
        .unwrap();
    assert_eq!(served.response, direct);
    let m = server.shutdown();
    assert_eq!(m.frames_completed, 4);
    // A 4-frame batch is one partial slab of the 64-lane kernel.
    assert_eq!((m.slabs_full, m.slabs_partial), (0, 1));
    assert_eq!(m.batch_slab_occupancy(), Some(0.0));
}

#[test]
fn slab_occupancy_counts_full_and_tail_slabs() {
    let driver = Driver::builder().build();
    let model = Arc::new(
        ZooModel::TfcW1A1
            .build_untrained(9, BnMode::Folded)
            .unwrap(),
    );
    // 130 frames = two full slabs + a 2-frame tail.
    let inputs: Vec<Vec<u8>> = (0..130u32).map(|i| vec![(i % 251) as u8; 784]).collect();
    let server = Server::start(driver, ServerConfig::default());
    server
        .submit(InferRequest::batch(model, inputs))
        .expect_accepted()
        .wait()
        .unwrap();
    let m = server.shutdown();
    assert_eq!(m.frames_completed, 130);
    assert_eq!((m.slabs_full, m.slabs_partial), (2, 1));
    let occ = m.batch_slab_occupancy().unwrap();
    assert!((occ - 2.0 / 3.0).abs() < 1e-12);
}

#[test]
fn fallback_batches_report_no_bitsliced_slabs() {
    // W2A2 models only admit the per-frame packed walk: a 130-frame
    // batch runs zero bitsliced slabs, so the occupancy metric must
    // report 130 frames of fallback work (3 slab-equivalents), not the
    // 2-full-slabs fiction the pre-fix frame-count accounting implied.
    let driver = Driver::builder().build();
    let model = Arc::new(
        ZooModel::TfcW2A2
            .build_untrained(9, BnMode::Hardware)
            .unwrap(),
    );
    let inputs: Vec<Vec<u8>> = (0..130u32).map(|i| vec![(i % 251) as u8; 784]).collect();
    let server = Server::start(driver, ServerConfig::default());
    server
        .submit(InferRequest::batch(model, inputs))
        .expect_accepted()
        .wait()
        .unwrap();
    let m = server.shutdown();
    assert_eq!(m.frames_completed, 130);
    assert_eq!((m.slabs_full, m.slabs_partial), (0, 3));
    assert_eq!(m.batch_slab_occupancy(), Some(0.0));
}
