#![cfg(loom)]
//! Model-checked crash-only recovery (DESIGN.md §4.7):
//! (`RUSTFLAGS="--cfg loom" cargo test -p netpu-serve --test loom_crash`).
//!
//! The server promises that a worker panic mid-serve ends in **exactly
//! one** client-visible outcome: the request is requeued for another
//! attempt, or rejected with `WorkerCrash` — never both, never
//! neither, and never a second delivery once an outcome went out. This
//! suite replays the real recovery protocol — `catch_unwind`
//! containment, poison-absorbing `lock_recover`, `push_reclaim`
//! requeue-or-reject, the one-shot response channel consumed at the
//! send site — over the loom-shimmed [`BoundedQueue`] and the shared
//! [`DmaArbiter`], with injected panics that unwind **while holding
//! the arbiter lock** (the worst state a real crash leaves behind).
//!
//! Three models:
//!
//! * **exactly-once under crash storms** — pre- and post-delivery
//!   crashes across concurrent workers: every request resolves to
//!   exactly one outcome, panics/requeues/rejections balance, and the
//!   poisoned arbiter keeps granting consistently.
//! * **closed-queue requeue refusal** — a crash whose requeue races a
//!   shutdown must degrade to an explicit rejection, not a silent
//!   disconnect.
//! * **post-delivery crash** — a panic after the outcome was sent
//!   recovers to *nothing*: no requeue, no second delivery.

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, MutexGuard, PoisonError};
use loom::thread;
use netpu_serve::queue::{BoundedQueue, Push};
use netpu_serve::DmaArbiter;

const TRANSFER_US: f64 = 10.0;

/// Where an injected panic unwinds, relative to outcome delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Fault {
    /// No fault: the attempt grants a transfer and delivers success.
    None,
    /// Panic before delivery, while holding the arbiter lock —
    /// recovery must requeue or reject.
    PreDelivery,
    /// Panic after delivery — recovery must do nothing.
    PostDelivery,
}

/// Deterministic fault script: attempt `k` (in global pop order) gets
/// `script[k]`; attempts past the script run fault-free.
struct Injector {
    attempt: usize,
    script: Vec<Fault>,
}

impl Injector {
    fn next_fault(&mut self) -> Fault {
        let f = self
            .script
            .get(self.attempt)
            .copied()
            .unwrap_or(Fault::None);
        self.attempt += 1;
        f
    }
}

/// A queued request carrying its one-shot response channel. `tx` is
/// consumed at the delivery site — the same seam the real `Job` uses
/// to make delivery exactly-once across crashes.
struct ModelJob {
    id: usize,
    tx: Option<()>,
    crashes: u32,
}

struct Shared {
    queue: BoundedQueue<ModelJob>,
    arbiter: Mutex<DmaArbiter>,
    injector: Mutex<Injector>,
    crash_requeues: u32,
    jobs: usize,
    /// Per-request delivery count: the exactly-once ledger.
    deliveries: Vec<AtomicUsize>,
    delivered_total: AtomicUsize,
    successes: AtomicUsize,
    rejections: AtomicUsize,
    worker_panics: AtomicUsize,
    crash_requeued: AtomicUsize,
}

/// The real server's poison absorber: a panicking worker poisons any
/// lock it holds, and every later acquisition keeps going with the
/// data as the crash left it.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Delivers an outcome through the one-shot channel; a job whose
/// channel was already consumed delivers nothing. The worker that
/// delivers the final outcome closes the queue (drain-then-shutdown),
/// so workers exit without any out-of-band signal.
fn deliver(shared: &Shared, job: &mut ModelJob, ok: bool) {
    if job.tx.take().is_none() {
        return;
    }
    shared.deliveries[job.id].fetch_add(1, Ordering::SeqCst);
    if ok {
        shared.successes.fetch_add(1, Ordering::SeqCst);
    } else {
        shared.rejections.fetch_add(1, Ordering::SeqCst);
    }
    if shared.delivered_total.fetch_add(1, Ordering::SeqCst) + 1 == shared.jobs {
        shared.queue.close();
    }
}

/// One serve attempt, mirroring `serve_one`: draw the injected fault,
/// maybe die holding the arbiter, otherwise grant a transfer on the
/// shared DMA and deliver success (maybe dying on the way out).
fn serve_one(shared: &Shared, job: &mut ModelJob) {
    let fault = lock_recover(&shared.injector).next_fault();
    if fault == Fault::PreDelivery {
        let _arbiter = lock_recover(&shared.arbiter);
        panic!("injected worker crash serving request {}", job.id);
    }
    {
        let mut arbiter = lock_recover(&shared.arbiter);
        let g = arbiter.grant(0.0, TRANSFER_US, TRANSFER_US);
        assert!(g.transfer_end_us >= g.start_us);
    }
    deliver(shared, job, true);
    if fault == Fault::PostDelivery {
        panic!("injected worker crash after delivering request {}", job.id);
    }
}

/// The real `recover_crash` protocol, verbatim in miniature: count the
/// panic; a consumed channel means the outcome already went out — do
/// nothing; otherwise requeue within budget via `push_reclaim`, and on
/// refusal (full or closed) reclaim the job and reject explicitly.
fn recover_crash(shared: &Shared, job: ModelJob) {
    shared.worker_panics.fetch_add(1, Ordering::SeqCst);
    let mut job = job;
    if job.tx.is_none() {
        return;
    }
    job.crashes += 1;
    if job.crashes <= shared.crash_requeues {
        match shared.queue.push_reclaim(job) {
            Ok(_) => {
                shared.crash_requeued.fetch_add(1, Ordering::SeqCst);
                return;
            }
            Err((reclaimed, _refusal)) => job = reclaimed,
        }
    }
    deliver(shared, &mut job, false);
}

/// The real `worker_loop`: crash-only containment around each serve,
/// recovery on unwind, exit when the queue closes and drains.
fn worker_loop(shared: &Shared) {
    while let Some(mut job) = shared.queue.pop_wait() {
        let served =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve_one(shared, &mut job)));
        if served.is_err() {
            recover_crash(shared, job);
        }
    }
}

fn shared(jobs: usize, capacity: usize, crash_requeues: u32, script: Vec<Fault>) -> Arc<Shared> {
    Arc::new(Shared {
        queue: BoundedQueue::new(capacity),
        arbiter: Mutex::new(DmaArbiter::new(2)),
        injector: Mutex::new(Injector { attempt: 0, script }),
        crash_requeues,
        jobs,
        deliveries: (0..jobs).map(|_| AtomicUsize::new(0)).collect(),
        delivered_total: AtomicUsize::new(0),
        successes: AtomicUsize::new(0),
        rejections: AtomicUsize::new(0),
        worker_panics: AtomicUsize::new(0),
        crash_requeued: AtomicUsize::new(0),
    })
}

fn submit_all(shared: &Shared) {
    for id in 0..shared.jobs {
        let pushed = shared.queue.push(ModelJob {
            id,
            tx: Some(()),
            crashes: 0,
        });
        assert!(matches!(pushed, Push::Accepted { .. }), "admission refused");
    }
}

fn spawn_workers(shared: &Arc<Shared>, n: usize) -> Vec<thread::JoinHandle<()>> {
    (0..n)
        .map(|_| {
            let shared = Arc::clone(shared);
            thread::spawn(move || worker_loop(&shared))
        })
        .collect()
}

/// Silences the injected panics (each model iteration unwinds several
/// times by design) while forwarding any *unexpected* panic to the
/// previous hook. Installed once for the whole test binary.
fn quiet_injected_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected worker crash"));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[test]
fn crash_storm_delivers_each_outcome_exactly_once() {
    quiet_injected_panics();
    loom::model(|| {
        const JOBS: usize = 4;
        // Three pre-delivery crashes and one post-delivery crash land
        // on the first four pops, however the workers interleave.
        let shared = shared(
            JOBS,
            JOBS,
            1,
            vec![
                Fault::PreDelivery,
                Fault::PreDelivery,
                Fault::PreDelivery,
                Fault::PostDelivery,
            ],
        );
        submit_all(&shared);
        let workers = spawn_workers(&shared, 2);
        for w in workers {
            // A lost outcome would leave the queue open and hang this
            // join until the model watchdog fires.
            w.join().unwrap();
        }

        // Exactly once, for every request, under every interleaving.
        for (id, d) in shared.deliveries.iter().enumerate() {
            assert_eq!(d.load(Ordering::SeqCst), 1, "request {id} outcome count");
        }
        let successes = shared.successes.load(Ordering::SeqCst);
        let rejections = shared.rejections.load(Ordering::SeqCst);
        let panics = shared.worker_panics.load(Ordering::SeqCst);
        let requeued = shared.crash_requeued.load(Ordering::SeqCst);
        assert_eq!(successes + rejections, JOBS);
        assert_eq!(panics, 4, "every scripted fault fired");
        // Each pre-delivery crash resolved as a requeue or a rejection
        // — never both, never neither. With a budget of one requeue, a
        // rejection needs the same job crashed twice, so at most one
        // of the three pre-delivery crashes can end in rejection.
        assert_eq!(requeued + rejections, 3);
        assert!(rejections <= 1, "rejections = {rejections}");
        // The arbiter was poisoned by every pre-delivery crash, yet
        // its bookkeeping stayed exact: one transfer per success (the
        // post-delivery crash granted and delivered before dying).
        let busy = lock_recover(&shared.arbiter).dma_busy_us();
        assert!((busy - successes as f64 * TRANSFER_US).abs() < 1e-9);
        assert!(shared.queue.is_empty());
    });
}

#[test]
fn requeue_refused_by_shutdown_degrades_to_explicit_rejection() {
    quiet_injected_panics();
    loom::model(|| {
        const JOBS: usize = 2;
        let shared = shared(JOBS, JOBS, 1, vec![Fault::PreDelivery]);
        submit_all(&shared);
        // Shutdown races the workers: admission closes while both
        // queued jobs are still in flight, so the crashed job's
        // requeue is refused (`Push::Closed`) even though its crash
        // budget is unspent — recovery must reclaim it and answer the
        // client with an explicit rejection.
        shared.queue.close();
        let workers = spawn_workers(&shared, 2);
        for w in workers {
            w.join().unwrap();
        }

        for (id, d) in shared.deliveries.iter().enumerate() {
            assert_eq!(d.load(Ordering::SeqCst), 1, "request {id} outcome count");
        }
        assert_eq!(shared.worker_panics.load(Ordering::SeqCst), 1);
        assert_eq!(shared.crash_requeued.load(Ordering::SeqCst), 0);
        assert_eq!(shared.rejections.load(Ordering::SeqCst), 1);
        assert_eq!(shared.successes.load(Ordering::SeqCst), 1);
    });
}

#[test]
fn post_delivery_crash_recovers_to_nothing() {
    quiet_injected_panics();
    loom::model(|| {
        let shared = shared(1, 1, 1, vec![Fault::PostDelivery]);
        submit_all(&shared);
        let workers = spawn_workers(&shared, 1);
        for w in workers {
            w.join().unwrap();
        }

        // The outcome went out before the crash: recovery counts the
        // panic and touches nothing else — no requeue, no rejection,
        // no second delivery.
        assert_eq!(shared.deliveries[0].load(Ordering::SeqCst), 1);
        assert_eq!(shared.worker_panics.load(Ordering::SeqCst), 1);
        assert_eq!(shared.crash_requeued.load(Ordering::SeqCst), 0);
        assert_eq!(shared.rejections.load(Ordering::SeqCst), 0);
        assert_eq!(shared.successes.load(Ordering::SeqCst), 1);
    });
}
