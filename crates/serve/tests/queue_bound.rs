//! The admission queue is *bounded*: under any schedule of submissions
//! and drains, its depth never exceeds the configured capacity, every
//! submission is either accepted or rejected, and every accepted
//! request is accounted for exactly once at shutdown.

use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, InferRequest};
use netpu_serve::{RejectReason, Server, ServerConfig, Submit};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn queue_depth_never_exceeds_the_bound(
        capacity in 1usize..6,
        n in 1usize..24,
        drain_mask in 0u32..u32::MAX,
    ) {
        let model = ZooModel::SfcW1A1
            .build_untrained(1, BnMode::Folded)
            .unwrap();
        let loadable = netpu_compiler::compile(&model, &vec![60u8; 784]).unwrap();
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                boards: 1,
                queue_capacity: capacity,
                ..ServerConfig::default()
            },
        );
        let mut tickets = Vec::new();
        let mut rejected = 0u64;
        for k in 0..n {
            match server.submit(InferRequest::loadable(loadable.clone())) {
                Submit::Accepted(t) => tickets.push(t),
                Submit::Denied(RejectReason::QueueFull { queue_len }) => {
                    prop_assert_eq!(queue_len, capacity);
                    rejected += 1;
                }
                Submit::Denied(reason) => panic!("unexpected denial: {reason}"),
            }
            // Random drain cadence: sometimes wait a pending ticket
            // mid-stream, freeing queue space at irregular points.
            if drain_mask & (1 << (k % 32)) != 0 {
                if let Some(t) = tickets.pop() {
                    prop_assert!(t.wait().is_ok());
                }
            }
        }
        let snap = server.metrics();
        let m = server.shutdown();
        for t in tickets {
            prop_assert!(t.wait().is_ok());
        }
        prop_assert!(snap.queue_high_water <= capacity,
            "high water {} over bound {}", snap.queue_high_water, capacity);
        prop_assert_eq!(m.queue_high_water, snap.queue_high_water);
        prop_assert_eq!(m.accepted + m.rejected, n as u64);
        prop_assert_eq!(m.rejected, rejected);
        prop_assert_eq!(m.completed + m.failed + m.timed_out, m.accepted);
        prop_assert_eq!(m.failed, 0);
        prop_assert_eq!(m.frames_completed, m.completed);
    }
}
