//! The bounded admission queue.
//!
//! [`BoundedQueue`] is the serving layer's only unbounded-wait point,
//! so it is written against a sync-primitive shim: normal builds use
//! `std::sync`, and `--cfg loom` builds swap in the `loom` model
//! checker's perturbed primitives so `tests/loom.rs` can explore
//! producer/consumer interleavings for the two invariants the server
//! depends on — the queue never holds more than its bound, and closing
//! the queue wakes every blocked worker (no lost wakeups, no stuck
//! shutdown).

use std::collections::VecDeque;
use std::sync::PoisonError;

#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};

/// Outcome of a [`BoundedQueue::push`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Push {
    /// Queued; `depth` is the queue length just after insertion.
    Accepted {
        /// Queue depth including the new item.
        depth: usize,
    },
    /// The bound was hit — explicit backpressure, nothing was queued.
    Full {
        /// Queue depth at the time of rejection (== the bound).
        len: usize,
    },
    /// The queue was closed; nothing was queued.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer/multi-consumer queue with non-blocking,
/// explicit-backpressure admission and drain-on-close shutdown:
/// [`close`](BoundedQueue::close) stops admission immediately, but
/// consumers keep receiving already-queued items until the queue is
/// empty, then get `None`.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` items.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue bound must be positive");
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Attempts to queue `item` without blocking. A refused item is
    /// dropped — fine for fresh submissions, whose caller still holds
    /// everything needed to answer the client; use
    /// [`push_reclaim`](BoundedQueue::push_reclaim) when the item must
    /// survive refusal.
    pub fn push(&self, item: T) -> Push {
        match self.push_reclaim(item) {
            Ok(depth) => Push::Accepted { depth },
            Err((_, refusal)) => refusal,
        }
    }

    /// Attempts to queue `item` without blocking, handing the item back
    /// on refusal together with the [`Push`] outcome that refused it.
    /// Crash-only recovery requeues a popped job that carries the
    /// client's one-shot response channel: if the queue refuses the
    /// requeue, the job must come back so recovery can deliver an
    /// explicit rejection instead of a silent disconnect.
    pub fn push_reclaim(&self, item: T) -> Result<usize, (T, Push)> {
        let mut s = lock(&self.state);
        if s.closed {
            return Err((item, Push::Closed));
        }
        if s.items.len() >= self.capacity {
            let len = s.items.len();
            return Err((item, Push::Full { len }));
        }
        s.items.push_back(item);
        let depth = s.items.len();
        drop(s);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed **and** drained (returning `None`).
    pub fn pop_wait(&self) -> Option<T> {
        let mut s = lock(&self.state);
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self
                .available
                .wait(s)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes admission and wakes every blocked consumer. Queued items
    /// remain poppable; only new pushes are refused.
    pub fn close(&self) {
        lock(&self.state).closed = true;
        self.available.notify_all();
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        lock(&self.state).items.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_backpressure() {
        let q = BoundedQueue::new(2);
        assert_eq!(q.push(1), Push::Accepted { depth: 1 });
        assert_eq!(q.push(2), Push::Accepted { depth: 2 });
        assert_eq!(q.push(3), Push::Full { len: 2 });
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_refuses_pushes_but_drains_pops() {
        let q = BoundedQueue::new(4);
        q.push(10);
        q.push(11);
        q.close();
        assert_eq!(q.push(12), Push::Closed);
        assert_eq!(q.pop_wait(), Some(10));
        assert_eq!(q.pop_wait(), Some(11));
        assert_eq!(q.pop_wait(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn push_reclaim_hands_back_refused_items() {
        let q = BoundedQueue::new(1);
        assert_eq!(q.push_reclaim(1), Ok(1));
        assert_eq!(q.push_reclaim(2), Err((2, Push::Full { len: 1 })));
        q.close();
        assert_eq!(q.push_reclaim(3), Err((3, Push::Closed)));
        assert_eq!(q.pop_wait(), Some(1));
    }

    #[test]
    fn pop_wait_blocks_until_a_push_arrives() {
        let q = std::sync::Arc::new(BoundedQueue::new(1));
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop_wait())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.push(7);
        assert_eq!(consumer.join().ok().flatten(), Some(7));
    }
}
