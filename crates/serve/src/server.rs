//! The multi-board inference server.
//!
//! A [`Server`] owns a bounded admission queue and one worker thread
//! per board. Submissions beyond the queue bound are **rejected at
//! admission** ([`Submit::Rejected`]) — backpressure is explicit, never
//! an unbounded buffer. Workers execute real accelerator simulations
//! concurrently on host threads, while the [`DmaArbiter`] places every
//! stream transfer on a shared virtual-time DMA engine, so throughput
//! saturates at the transfer bound exactly as
//! [`ClusterThroughput`](netpu_runtime::ClusterThroughput) predicts.

use crate::arbiter::DmaArbiter;
use crate::faults::{FaultInjector, FaultPlan};
use crate::metrics::{Counters, MetricsSnapshot};
use crate::queue::{BoundedQueue, Push};
use netpu_compiler::compile;
use netpu_runtime::{Driver, DriverError, InferPayload, InferRequest, InferResponse};
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of boards (and worker threads).
    pub boards: usize,
    /// Admission queue bound; submissions beyond it are rejected.
    pub queue_capacity: usize,
    /// Deadline applied to requests that set none, µs of virtual time.
    pub default_deadline_us: Option<f64>,
    /// Retry budget for requests that set none.
    pub max_retries: u32,
    /// Stream faults to inject (tests the retry path).
    pub faults: FaultPlan,
    /// Reject submissions whose pre-flight range analysis proves the
    /// datapath can overflow or leave the comparator's domain
    /// (error-class NPC014/NPC018/NPC020 findings, DESIGN.md §4.4).
    /// Lenient servers still count such submissions in
    /// [`MetricsSnapshot::range_flagged`] but admit them.
    pub strict_range: bool,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            boards: 1,
            queue_capacity: 64,
            default_deadline_us: None,
            max_retries: 0,
            faults: FaultPlan::None,
            strict_range: true,
        }
    }
}

/// Outcome of a [`Server::submit`] call.
#[derive(Debug)]
pub enum Submit {
    /// The request was queued; await the result via the ticket.
    Accepted(Ticket),
    /// The bounded queue was full — explicit backpressure.
    Rejected {
        /// Queue depth at the time of rejection (== the bound).
        queue_len: usize,
    },
    /// The server has shut down.
    Closed,
    /// The static pre-flight verifier rejected the stream at admission:
    /// either the structural tier found a malformed stream (DESIGN.md
    /// §4.3) or, on a strict-range server, the abstract interpreter
    /// proved the datapath unsound for it (§4.4). Either way the
    /// request would have misbehaved on the board, so it never costs a
    /// queue slot or worker time.
    Invalid {
        /// The verifier's findings.
        report: netpu_check::Report,
    },
}

impl Submit {
    /// Unwraps the ticket of an accepted submission.
    pub fn expect_accepted(self) -> Ticket {
        match self {
            Submit::Accepted(t) => t,
            other => panic!("submission was not accepted: {other:?}"),
        }
    }
}

/// A successfully served request.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// The inference result, identical to what [`Driver::run`] returns
    /// for the same request.
    pub response: InferResponse,
    /// Board the request ran on.
    pub board: usize,
    /// Virtual time the request's stream started, µs.
    pub start_us: f64,
    /// Virtual time the request completed, µs.
    pub complete_us: f64,
    /// Delivery attempts it took (1 = no retries).
    pub attempts: u32,
}

/// Handle to one queued request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse, DriverError>>,
}

impl Ticket {
    /// Blocks until the request completes, fails, or the server is
    /// dropped with the request unserved.
    pub fn wait(self) -> Result<ServeResponse, DriverError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(DriverError::Queue {
                reason: "server shut down before the request completed".into(),
            })
        })
    }
}

struct Job {
    req: InferRequest<'static>,
    tx: mpsc::Sender<Result<ServeResponse, DriverError>>,
}

struct Shared {
    cfg: ServerConfig,
    driver: Driver,
    counters: Counters,
    arbiter: Mutex<DmaArbiter>,
    injector: Mutex<FaultInjector>,
    queue: BoundedQueue<Job>,
}

/// A multi-board inference server over one shared DMA engine.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the server: spawns one worker thread per board.
    pub fn start(mut driver: Driver, cfg: ServerConfig) -> Server {
        assert!(cfg.boards > 0, "at least one board");
        assert!(cfg.queue_capacity > 0, "queue bound must be positive");
        // The server's admission policy is authoritative: a lenient
        // server must not have its workers re-reject admitted streams
        // through the driver's own (default-strict) range gate.
        driver.strict_range = cfg.strict_range;
        let shared = Arc::new(Shared {
            driver,
            counters: Counters::default(),
            arbiter: Mutex::new(DmaArbiter::new(cfg.boards)),
            injector: Mutex::new(FaultInjector::new(cfg.faults.clone())),
            queue: BoundedQueue::new(cfg.queue_capacity),
            cfg,
        });
        let workers = (0..shared.cfg.boards)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a request. Admission is non-blocking: a full queue
    /// answers [`Submit::Rejected`] immediately so the caller can shed
    /// or defer load instead of piling up unbounded work.
    pub fn submit(&self, req: InferRequest<'static>) -> Submit {
        // Cheap static pre-flight before a queue slot is taken: a
        // stream the accelerator would reject never reaches a worker.
        if let InferPayload::Loadable(loadable) = &req.payload {
            let report = netpu_check::check(loadable, &self.shared.driver.hw);
            let range = report.has_range_errors();
            if range {
                self.shared
                    .counters
                    .range_flagged
                    .fetch_add(1, Ordering::Relaxed);
            }
            if report.has_structural_errors() || (self.shared.cfg.strict_range && range) {
                if self.shared.cfg.strict_range && range {
                    self.shared
                        .counters
                        .range_rejected
                        .fetch_add(1, Ordering::Relaxed);
                }
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                return Submit::Invalid { report };
            }
        }
        let (tx, rx) = mpsc::channel();
        match self.shared.queue.push(Job { req, tx }) {
            Push::Closed => Submit::Closed,
            Push::Full { len } => {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Submit::Rejected { queue_len: len }
            }
            Push::Accepted { depth } => {
                self.shared
                    .counters
                    .accepted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.counters.observe_queue_depth(depth);
                Submit::Accepted(Ticket { rx })
            }
        }
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let arbiter = lock_recover(&self.shared.arbiter);
        MetricsSnapshot::gather(&self.shared.counters, &arbiter)
    }

    /// Closes admission, drains every queued request, joins the
    /// workers, and returns the final metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        let arbiter = lock_recover(&self.shared.arbiter);
        MetricsSnapshot::gather(&self.shared.counters, &arbiter)
    }
}

/// Locks a mutex, recovering the data on poison: a worker that
/// panicked mid-request leaves queue/arbiter state consistent enough to
/// keep serving (the panicking request's ticket sender is dropped, so
/// its client sees a disconnect, not a hang).
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop_wait() {
        serve_one(shared, job);
    }
}

/// DMA occupancy of a served request: one setup per transfer plus the
/// bandwidth-bound streaming time of every word.
fn response_occupancy_us(driver: &Driver, resp: &InferResponse) -> f64 {
    if resp.dma_transfers == 0 {
        return 0.0;
    }
    driver
        .dma
        .occupancy_us(resp.total_stream_words(), driver.hw.clock_mhz)
        + (resp.dma_transfers - 1) as f64 * driver.dma.setup_us
}

fn serve_one(shared: &Shared, job: Job) {
    let Job { req, tx } = job;
    let deadline_us = req.options.deadline_us.or(shared.cfg.default_deadline_us);
    let retries = req.options.retries.unwrap_or(shared.cfg.max_retries);
    let options = req.options;
    // Normalize single-frame requests to a pre-compiled loadable so
    // every delivery attempt goes out as a raw stream (the unit the
    // fault model corrupts), and compile errors surface before any
    // DMA time is charged.
    let payload = match req.payload {
        InferPayload::Single { model, pixels } => match compile(&model, &pixels) {
            Ok(loadable) => InferPayload::Loadable(loadable),
            Err(e) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Err(DriverError::Compile(e)));
                return;
            }
        },
        p => p,
    };

    let mut attempt = 0u32;
    loop {
        // Build this attempt's payload, injecting stream faults.
        let (attempt_payload, attempt_words) = match &payload {
            InferPayload::Loadable(loadable) => {
                let mut l = loadable.clone();
                lock_recover(&shared.injector).corrupt(attempt, &mut l.words);
                let words = l.len();
                (InferPayload::Loadable(l), words)
            }
            p => (p.clone(), 0),
        };
        let result = shared.driver.run(InferRequest {
            payload: attempt_payload,
            options,
        });
        match result {
            Ok(resp) => {
                let transfer_us = response_occupancy_us(&shared.driver, &resp);
                let latency_us = resp.total_latency_us();
                let grant = lock_recover(&shared.arbiter).grant(0.0, transfer_us, latency_us);
                if let Some(deadline) = deadline_us {
                    if grant.complete_us > deadline {
                        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                        let _ = tx.send(Err(DriverError::Timeout {
                            deadline_us: deadline,
                            elapsed_us: grant.complete_us,
                        }));
                        return;
                    }
                }
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .frames_completed
                    .fetch_add(resp.runs.len() as u64, Ordering::Relaxed);
                if let Some(breakdown) = resp.batch_slabs {
                    shared.counters.observe_batch_slabs(breakdown);
                }
                shared.counters.observe_latency(grant.complete_us);
                let _ = tx.send(Ok(ServeResponse {
                    response: resp,
                    board: grant.board,
                    start_us: grant.start_us,
                    complete_us: grant.complete_us,
                    attempts: attempt + 1,
                }));
                return;
            }
            Err(e) => {
                // Only accelerator-side stream faults are transient;
                // compile errors would fail identically on every retry.
                let retryable = matches!(e, DriverError::Accelerator(_) | DriverError::Check(_));
                if retryable && attempt < retries {
                    // The rejected stream still occupied the shared
                    // DMA: charge a transfer-only grant before the
                    // retry goes back to the queue of attempts.
                    let wasted = shared
                        .driver
                        .dma
                        .occupancy_us(attempt_words, shared.driver.hw.clock_mhz);
                    lock_recover(&shared.arbiter).grant(0.0, wasted, wasted);
                    shared.counters.retried.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    continue;
                }
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let _ = tx.send(Err(e));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use std::sync::Arc;

    fn tfc() -> Arc<netpu_nn::QuantMlp> {
        Arc::new(
            ZooModel::TfcW1A1
                .build_untrained(1, BnMode::Folded)
                .unwrap(),
        )
    }

    #[test]
    fn serves_a_single_request() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]))
            .expect_accepted();
        let served = ticket.wait().unwrap();
        assert_eq!(served.attempts, 1);
        assert_eq!(served.board, 0);
        assert_eq!(served.response.runs.len(), 1);
        let m = server.shutdown();
        assert_eq!((m.accepted, m.completed, m.failed), (1, 1, 0));
        assert_eq!(m.frames_completed, 1);
        assert!(m.measured_fps().is_some());
    }

    #[test]
    fn compile_errors_fail_without_charging_the_dma() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 3]))
            .expect_accepted();
        assert!(matches!(ticket.wait(), Err(DriverError::Compile(_))));
        let m = server.shutdown();
        assert_eq!((m.completed, m.failed), (0, 1));
        assert_eq!(m.dma_busy_us, 0.0);
    }

    #[test]
    fn strict_server_rejects_range_unsound_loadables_at_admission() {
        let model = tfc();
        let mut loadable = compile(&model, &vec![5u8; 784]).unwrap();
        // An empty declared input interval is an error-class range
        // finding (NPC020) but leaves the stream structurally intact.
        loadable.set_declared_input_range(10, 5);

        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        match server.submit(InferRequest::loadable(loadable.clone())) {
            Submit::Invalid { report } => {
                assert!(report.has_range_errors());
                assert!(!report.has_structural_errors());
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
        let m = server.shutdown();
        assert_eq!((m.rejected, m.range_flagged, m.range_rejected), (1, 1, 1));

        // A lenient server flags the same stream but serves it anyway.
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                strict_range: false,
                ..ServerConfig::default()
            },
        );
        let ticket = server
            .submit(InferRequest::loadable(loadable))
            .expect_accepted();
        ticket.wait().unwrap();
        let m = server.shutdown();
        assert_eq!((m.completed, m.range_flagged, m.range_rejected), (1, 1, 0));
    }

    #[test]
    fn closed_server_answers_closed() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        server.shared.queue.close();
        assert!(matches!(
            server.submit(InferRequest::single(tfc(), vec![0u8; 784])),
            Submit::Closed
        ));
    }

    #[test]
    fn deadline_zero_times_out() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]).with_deadline_us(1.0))
            .expect_accepted();
        match ticket.wait() {
            Err(DriverError::Timeout {
                deadline_us,
                elapsed_us,
            }) => {
                assert_eq!(deadline_us, 1.0);
                assert!(elapsed_us > 1.0);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        let m = server.shutdown();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.completed, 0);
    }
}
