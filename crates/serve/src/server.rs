//! The multi-board inference server.
//!
//! A [`Server`] owns a bounded admission queue and one worker thread
//! per board. Every refusal — full queue, closed server, verifier
//! findings, exhausted crash-recovery budget — is answered with the
//! workspace's unified [`Submit::Denied`]`(`[`RejectReason`]`)`, so
//! clients pattern-match one structured surface across the whole
//! stack. Workers execute real accelerator simulations concurrently on
//! host threads, while the [`DmaArbiter`] places every stream transfer
//! on a shared virtual-time DMA engine, so throughput saturates at the
//! transfer bound exactly as
//! [`ClusterThroughput`](netpu_runtime::ClusterThroughput) predicts.
//!
//! # Crash-only recovery
//!
//! Workers are *crash-only* (DESIGN.md §4.7): a panic anywhere in the
//! serving path is caught at the worker loop, the dead request is
//! requeued (up to [`ServerConfig::crash_requeues`] times) or rejected
//! with [`RejectReason::WorkerCrash`], and the worker keeps serving.
//! Every lock acquisition goes through [`lock_recover`], so a panic
//! that poisons the arbiter or injector mutex cannot cascade. Outcome
//! delivery is exactly-once by construction: the client's one-shot
//! sender lives in an `Option` consumed at the send site, so a
//! post-delivery panic finds nothing left to deliver.
//!
//! # Tracing
//!
//! With a [`TraceSink`] configured, the server records the full
//! request lifecycle (submit, admit, deny, grant, retry, crash,
//! requeue, complete) with virtual timestamps. Grant events are
//! recorded inside the arbiter's critical section, so the sink's order
//! matches the arbiter's schedule order and `netpu_trace::verify` can
//! re-derive the schedule recurrence bit-for-bit.

use crate::arbiter::DmaArbiter;
use crate::faults::{FaultInjector, FaultPlan};
use crate::metrics::{Counters, MetricsSnapshot};
use crate::queue::{BoundedQueue, Push};
use netpu_check::{AdmissionVerdict, RejectReason};
use netpu_compiler::compile;
use netpu_nn::QuantMlp;
use netpu_runtime::{Driver, DriverError, InferPayload, InferRequest, InferResponse};
use netpu_trace::{TraceEvent, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of boards (and worker threads).
    pub boards: usize,
    /// Admission queue bound; submissions beyond it are denied.
    pub queue_capacity: usize,
    /// Deadline applied to requests that set none, µs of virtual time.
    pub default_deadline_us: Option<f64>,
    /// Retry budget for requests that set none.
    pub max_retries: u32,
    /// Stream faults to inject (tests the retry and crash paths).
    pub faults: FaultPlan,
    /// Reject submissions whose pre-flight range analysis proves the
    /// datapath can overflow or leave the comparator's domain
    /// (error-class NPC014/NPC018/NPC020 findings, DESIGN.md §4.4).
    /// Lenient servers still count such submissions in
    /// [`MetricsSnapshot::range_flagged`] but admit them.
    pub strict_range: bool,
    /// Reject [`Server::submit_certified`] submissions whose stream the
    /// translation validator proves computes a *different function*
    /// than the claimed source model (error-class NPC021/NPC022/NPC024
    /// findings, DESIGN.md §4.8). Also propagated to the workers'
    /// driver, so `Single`/`Batch` payloads — which carry their source
    /// model by construction — get the same third tier on their
    /// compiled streams. Lenient servers still count certified
    /// submissions with equivalence findings in
    /// [`MetricsSnapshot::equiv_flagged`] but admit them. Off by
    /// default: the third tier costs a symbolic execution per
    /// admission.
    pub strict_equiv: bool,
    /// How many times a request whose worker died mid-serve is put
    /// back on the queue before crash recovery gives up and rejects it
    /// with [`RejectReason::WorkerCrash`].
    pub crash_requeues: u32,
    /// Structured event sink recording the request lifecycle and the
    /// DMA schedule; `None` (the default) records nothing.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            boards: 1,
            queue_capacity: 64,
            default_deadline_us: None,
            max_retries: 0,
            faults: FaultPlan::None,
            strict_range: true,
            strict_equiv: false,
            crash_requeues: 1,
            trace: None,
        }
    }
}

/// Outcome of a [`Server::submit`] call.
#[derive(Debug)]
pub enum Submit {
    /// The request was queued; await the result via the ticket.
    Accepted(Ticket),
    /// Admission refused the request. The unified [`RejectReason`]
    /// says why: [`RejectReason::Invalid`] carries the pre-flight
    /// verifier's NPC findings, [`RejectReason::QueueFull`] is
    /// explicit backpressure, [`RejectReason::Closed`] means the
    /// server has shut down.
    Denied(RejectReason),
}

impl Submit {
    /// Unwraps the ticket of an accepted submission.
    pub fn expect_accepted(self) -> Ticket {
        match self {
            Submit::Accepted(t) => t,
            Submit::Denied(reason) => panic!("submission was denied: {reason}"),
        }
    }

    /// The rejection reason of a denied submission.
    pub fn denial(&self) -> Option<&RejectReason> {
        match self {
            Submit::Denied(reason) => Some(reason),
            Submit::Accepted(_) => None,
        }
    }
}

/// A successfully served request.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeResponse {
    /// The inference result, identical to what [`Driver::run`] returns
    /// for the same request.
    pub response: InferResponse,
    /// Board the request ran on.
    pub board: usize,
    /// Virtual time the request's stream started, µs.
    pub start_us: f64,
    /// Virtual time the request completed, µs.
    pub complete_us: f64,
    /// Delivery attempts it took (1 = no retries).
    pub attempts: u32,
}

/// Handle to one queued request.
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<ServeResponse, DriverError>>,
}

impl Ticket {
    /// Blocks until the request completes, fails, or the server is
    /// dropped with the request unserved.
    pub fn wait(self) -> Result<ServeResponse, DriverError> {
        self.rx.recv().unwrap_or_else(|_| {
            Err(DriverError::Queue {
                reason: "server shut down before the request completed".into(),
            })
        })
    }
}

struct Job {
    id: u64,
    req: InferRequest<'static>,
    /// The client's one-shot response channel. Consumed at the send
    /// site, so delivery is exactly-once even across worker crashes: a
    /// panic after the send finds `None` and recovery does nothing.
    tx: Option<mpsc::Sender<Result<ServeResponse, DriverError>>>,
    /// Worker deaths this request has survived so far.
    crashes: u32,
}

impl Job {
    /// Delivers the request's terminal outcome, at most once.
    fn deliver(&mut self, outcome: Result<ServeResponse, DriverError>) {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(outcome);
        }
    }
}

struct Shared {
    cfg: ServerConfig,
    driver: Driver,
    counters: Counters,
    arbiter: Mutex<DmaArbiter>,
    injector: Mutex<FaultInjector>,
    queue: BoundedQueue<Job>,
    next_request: AtomicU64,
}

impl Shared {
    fn trace(&self, t_us: f64, event: TraceEvent) {
        if let Some(sink) = &self.cfg.trace {
            sink.record(t_us, event);
        }
    }
}

/// A multi-board inference server over one shared DMA engine.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the server: spawns one worker thread per board.
    pub fn start(mut driver: Driver, cfg: ServerConfig) -> Server {
        assert!(cfg.boards > 0, "at least one board");
        assert!(cfg.queue_capacity > 0, "queue bound must be positive");
        // The server's admission policy is authoritative: a lenient
        // server must not have its workers re-reject admitted streams
        // through the driver's own (default-strict) range gate.
        driver.strict_range = cfg.strict_range;
        driver.strict_equiv = cfg.strict_equiv;
        let shared = Arc::new(Shared {
            driver,
            counters: Counters::default(),
            arbiter: Mutex::new(DmaArbiter::new(cfg.boards)),
            injector: Mutex::new(FaultInjector::new(cfg.faults.clone())),
            queue: BoundedQueue::new(cfg.queue_capacity),
            next_request: AtomicU64::new(0),
            cfg,
        });
        let workers = (0..shared.cfg.boards)
            .map(|worker| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, worker))
            })
            .collect();
        Server { shared, workers }
    }

    /// Submits a request. Admission is non-blocking: a full queue
    /// answers [`RejectReason::QueueFull`] immediately so the caller
    /// can shed or defer load instead of piling up unbounded work.
    pub fn submit(&self, req: InferRequest<'static>) -> Submit {
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        self.shared.trace(
            0.0,
            TraceEvent::Submitted {
                request: id,
                tenant: 0,
                model: 0,
            },
        );
        // Cheap static pre-flight before a queue slot is taken: a
        // stream the accelerator would reject never reaches a worker.
        let mut range_flagged = false;
        if let InferPayload::Loadable(loadable) = &req.payload {
            let report = netpu_check::check(loadable, &self.shared.driver.hw);
            if report.has_range_errors() {
                self.shared
                    .counters
                    .range_flagged
                    .fetch_add(1, Ordering::Relaxed);
            }
            match AdmissionVerdict::from_report(report, self.shared.cfg.strict_range) {
                AdmissionVerdict::Admitted {
                    range_flagged: flagged,
                } => range_flagged = flagged,
                AdmissionVerdict::Rejected(reason) => {
                    if reason
                        .report()
                        .is_some_and(netpu_check::Report::has_range_errors)
                        && self.shared.cfg.strict_range
                    {
                        self.shared
                            .counters
                            .range_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return self.deny(id, reason);
                }
            }
        }
        self.enqueue(id, req, range_flagged)
    }

    /// Submits a request *together with the source model its loadable
    /// payload claims to implement*, enabling the third admission tier
    /// (DESIGN.md §4.8): on top of the structural and range pre-flight,
    /// the [`symex`](netpu_check::symex) translation validator
    /// certifies the stream bit-precisely equivalent to `source`.
    /// Equivalence findings are always counted in
    /// [`MetricsSnapshot::equiv_flagged`]; they deny admission only
    /// under [`ServerConfig::strict_equiv`]. Payloads other than
    /// [`InferPayload::Loadable`] carry no separate stream to validate
    /// (the worker compiles them from their own source, where the
    /// driver applies the same tier) and are admitted exactly like
    /// [`Server::submit`].
    pub fn submit_certified(&self, source: &QuantMlp, req: InferRequest<'static>) -> Submit {
        let id = self.shared.next_request.fetch_add(1, Ordering::Relaxed);
        self.shared.trace(
            0.0,
            TraceEvent::Submitted {
                request: id,
                tenant: 0,
                model: 0,
            },
        );
        let mut range_flagged = false;
        if let InferPayload::Loadable(loadable) = &req.payload {
            let report =
                netpu_check::check_words_against(&loadable.words, source, &self.shared.driver.hw);
            if report.has_range_errors() {
                self.shared
                    .counters
                    .range_flagged
                    .fetch_add(1, Ordering::Relaxed);
            }
            if report.has_equiv_errors() {
                self.shared
                    .counters
                    .equiv_flagged
                    .fetch_add(1, Ordering::Relaxed);
            }
            let strict_equiv = self.shared.cfg.strict_equiv;
            match AdmissionVerdict::from_report_tiers(
                report,
                self.shared.cfg.strict_range,
                strict_equiv,
            ) {
                AdmissionVerdict::Admitted {
                    range_flagged: flagged,
                } => range_flagged = flagged,
                AdmissionVerdict::Rejected(reason) => {
                    if reason
                        .report()
                        .is_some_and(netpu_check::Report::has_range_errors)
                        && self.shared.cfg.strict_range
                    {
                        self.shared
                            .counters
                            .range_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if reason
                        .report()
                        .is_some_and(netpu_check::Report::has_equiv_errors)
                        && strict_equiv
                    {
                        self.shared
                            .counters
                            .equiv_rejected
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    self.shared
                        .counters
                        .rejected
                        .fetch_add(1, Ordering::Relaxed);
                    return self.deny(id, reason);
                }
            }
        }
        self.enqueue(id, req, range_flagged)
    }

    fn enqueue(&self, id: u64, req: InferRequest<'static>, range_flagged: bool) -> Submit {
        let (tx, rx) = mpsc::channel();
        // The Admitted event is recorded *before* the push: once the
        // job is visible in the queue a worker may serve it to
        // completion immediately, and the request's terminal event
        // must not precede its admission in the trace. A push refusal
        // then legitimately follows Admitted with a Rejected event
        // (Admitted is not terminal).
        self.shared.trace(
            0.0,
            TraceEvent::Admitted {
                request: id,
                range_flagged,
            },
        );
        match self.shared.queue.push(Job {
            id,
            req,
            tx: Some(tx),
            crashes: 0,
        }) {
            Push::Closed => self.deny(id, RejectReason::Closed),
            Push::Full { len } => {
                self.shared
                    .counters
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                self.deny(id, RejectReason::QueueFull { queue_len: len })
            }
            Push::Accepted { depth } => {
                self.shared
                    .counters
                    .accepted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.counters.observe_queue_depth(depth);
                Submit::Accepted(Ticket { rx })
            }
        }
    }

    fn deny(&self, id: u64, reason: RejectReason) -> Submit {
        self.shared.trace(0.0, TraceEvent::rejected(id, &reason));
        Submit::Denied(reason)
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        let arbiter = lock_recover(&self.shared.arbiter);
        MetricsSnapshot::gather(&self.shared.counters, &arbiter)
    }

    /// Closes admission, drains every queued request, joins the
    /// workers, and returns the final metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        let arbiter = lock_recover(&self.shared.arbiter);
        MetricsSnapshot::gather(&self.shared.counters, &arbiter)
    }
}

/// Locks a mutex, recovering the data on poison. Crash-only recovery
/// depends on this seam: a worker that panics mid-request (possibly
/// while holding the arbiter or injector lock) poisons the mutex, and
/// every later acquisition — other workers granting transfers, metrics
/// snapshots, the recovery path itself — must keep going with the data
/// as the panicking thread left it. Both guarded structures stay
/// internally consistent across any panic point: the arbiter only
/// mutates plain `f64` bookkeeping and the injector a counter, neither
/// of which can be observed mid-update through the lock.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared, worker: usize) {
    while let Some(mut job) = shared.queue.pop_wait() {
        // Crash-only containment: a panic anywhere in the serving path
        // kills the *request*, never the worker. AssertUnwindSafe is
        // sound here because everything the closure shares is behind
        // locks re-entered via `lock_recover`, which absorbs the
        // poison instead of cascading it.
        let served =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| serve_one(shared, &mut job)));
        if served.is_err() {
            recover_crash(shared, worker, job);
        }
    }
}

/// Crash-only recovery (DESIGN.md §4.7): a worker panic mid-serve ends
/// in exactly one client-visible outcome — the request is requeued for
/// another attempt, or it is rejected with
/// [`RejectReason::WorkerCrash`]. Never both, never neither, and never
/// a second delivery for a request whose outcome already went out
/// ([`Job::tx`] is consumed at the send site, so a post-delivery panic
/// leaves nothing to recover).
fn recover_crash(shared: &Shared, worker: usize, mut job: Job) {
    shared
        .counters
        .worker_panics
        .fetch_add(1, Ordering::Relaxed);
    if job.tx.is_none() {
        // The outcome was already delivered; the panic happened on the
        // way out of the serving path. The request's lifecycle is
        // complete, so nothing is requeued, rejected, or traced.
        return;
    }
    shared.trace(
        0.0,
        TraceEvent::WorkerCrash {
            worker: worker as u64,
            request: job.id,
        },
    );
    job.crashes += 1;
    let (id, crashes) = (job.id, job.crashes);
    if crashes <= shared.cfg.crash_requeues {
        match shared.queue.push_reclaim(job) {
            Ok(depth) => {
                shared
                    .counters
                    .crash_requeued
                    .fetch_add(1, Ordering::Relaxed);
                shared.counters.observe_queue_depth(depth);
                shared.trace(
                    0.0,
                    TraceEvent::Requeued {
                        request: id,
                        crashes: u64::from(crashes),
                    },
                );
                return;
            }
            // The queue refused the requeue (full or closed): fall
            // through to an explicit rejection with the job reclaimed.
            Err((reclaimed, _refusal)) => job = reclaimed,
        }
    }
    let reason = RejectReason::WorkerCrash { crashes };
    shared.counters.failed.fetch_add(1, Ordering::Relaxed);
    shared.trace(0.0, TraceEvent::rejected(id, &reason));
    job.deliver(Err(DriverError::Rejected(reason)));
}

/// DMA occupancy of a served request: one setup per transfer plus the
/// bandwidth-bound streaming time of every word.
fn response_occupancy_us(driver: &Driver, resp: &InferResponse) -> f64 {
    if resp.dma_transfers == 0 {
        return 0.0;
    }
    driver
        .dma
        .occupancy_us(resp.total_stream_words(), driver.hw.clock_mhz)
        + (resp.dma_transfers - 1) as f64 * driver.dma.setup_us
}

fn serve_one(shared: &Shared, job: &mut Job) {
    let deadline_us = job
        .req
        .options
        .deadline_us
        .or(shared.cfg.default_deadline_us);
    let retries = job.req.options.retries.unwrap_or(shared.cfg.max_retries);
    let options = job.req.options;
    // Normalize single-frame requests to a pre-compiled loadable, in
    // place on the job: every delivery attempt goes out as a raw
    // stream (the unit the fault model corrupts), compile errors
    // surface before any DMA time is charged, and a crash-requeued job
    // re-enters the queue already compiled.
    if let InferPayload::Single { model, pixels } = &job.req.payload {
        match compile(model, pixels) {
            Ok(loadable) => job.req.payload = InferPayload::Loadable(loadable),
            Err(e) => {
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                let err = DriverError::Compile(e);
                shared.trace(
                    0.0,
                    TraceEvent::Failed {
                        request: job.id,
                        error: err.to_string(),
                    },
                );
                job.deliver(Err(err));
                return;
            }
        }
    }

    let mut attempt = 0u32;
    loop {
        // Build this attempt's payload, injecting stream faults.
        let (attempt_payload, attempt_words) = match &job.req.payload {
            InferPayload::Loadable(loadable) => {
                let mut l = loadable.clone();
                let crash = {
                    let mut injector = lock_recover(&shared.injector);
                    injector.corrupt(attempt, &mut l.words);
                    injector.should_crash()
                };
                if crash {
                    // The injected death happens "mid-DMA": the panic
                    // unwinds while holding the arbiter lock, poisoning
                    // it — the worst state a real crash leaves behind
                    // and exactly what `lock_recover` must absorb.
                    let _arbiter = lock_recover(&shared.arbiter);
                    panic!("injected worker crash serving request {}", job.id);
                }
                let words = l.len();
                (InferPayload::Loadable(l), words)
            }
            p => (p.clone(), 0),
        };
        let result = shared.driver.run(InferRequest {
            payload: attempt_payload,
            options,
        });
        match result {
            Ok(resp) => {
                let transfer_us = response_occupancy_us(&shared.driver, &resp);
                let latency_us = resp.total_latency_us();
                let grant = {
                    // The grant event is recorded inside the arbiter's
                    // critical section: replay re-derives the schedule
                    // from grant order, so sink order must match
                    // arbiter order exactly.
                    let mut arbiter = lock_recover(&shared.arbiter);
                    let g = arbiter.grant(0.0, transfer_us, latency_us);
                    shared.trace(
                        g.start_us,
                        TraceEvent::Granted {
                            request: job.id,
                            board: g.board as u64,
                            arrival_us: 0.0,
                            transfer_us,
                            latency_us,
                            start_us: g.start_us,
                            transfer_end_us: g.transfer_end_us,
                            complete_us: g.complete_us,
                        },
                    );
                    g
                };
                if let Some(deadline) = deadline_us {
                    if grant.complete_us > deadline {
                        shared.counters.timed_out.fetch_add(1, Ordering::Relaxed);
                        let err = DriverError::Timeout {
                            deadline_us: deadline,
                            elapsed_us: grant.complete_us,
                        };
                        shared.trace(
                            grant.complete_us,
                            TraceEvent::Failed {
                                request: job.id,
                                error: err.to_string(),
                            },
                        );
                        job.deliver(Err(err));
                        return;
                    }
                }
                shared.counters.completed.fetch_add(1, Ordering::Relaxed);
                shared
                    .counters
                    .frames_completed
                    .fetch_add(resp.runs.len() as u64, Ordering::Relaxed);
                if let Some(breakdown) = resp.batch_slabs {
                    shared.counters.observe_batch_slabs(breakdown);
                }
                shared.counters.observe_latency(grant.complete_us);
                shared.trace(
                    grant.complete_us,
                    TraceEvent::Completed {
                        request: job.id,
                        latency_us: grant.complete_us,
                    },
                );
                job.deliver(Ok(ServeResponse {
                    response: resp,
                    board: grant.board,
                    start_us: grant.start_us,
                    complete_us: grant.complete_us,
                    attempts: attempt + 1,
                }));
                return;
            }
            Err(e) => {
                // Only accelerator-side stream faults are transient;
                // compile errors would fail identically on every retry.
                let retryable = matches!(
                    e,
                    DriverError::Accelerator(_)
                        | DriverError::Rejected(RejectReason::Invalid { .. })
                );
                if retryable && attempt < retries {
                    // The rejected stream still occupied the shared
                    // DMA: charge a transfer-only grant before the
                    // retry goes back to the queue of attempts.
                    let wasted = shared
                        .driver
                        .dma
                        .occupancy_us(attempt_words, shared.driver.hw.clock_mhz);
                    {
                        let mut arbiter = lock_recover(&shared.arbiter);
                        let g = arbiter.grant(0.0, wasted, wasted);
                        shared.trace(
                            g.start_us,
                            TraceEvent::Granted {
                                request: job.id,
                                board: g.board as u64,
                                arrival_us: 0.0,
                                transfer_us: wasted,
                                latency_us: wasted,
                                start_us: g.start_us,
                                transfer_end_us: g.transfer_end_us,
                                complete_us: g.complete_us,
                            },
                        );
                    }
                    shared.counters.retried.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    shared.trace(
                        0.0,
                        TraceEvent::Retried {
                            request: job.id,
                            attempt: u64::from(attempt),
                        },
                    );
                    continue;
                }
                shared.counters.failed.fetch_add(1, Ordering::Relaxed);
                shared.trace(
                    0.0,
                    TraceEvent::Failed {
                        request: job.id,
                        error: e.to_string(),
                    },
                );
                job.deliver(Err(e));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netpu_nn::export::BnMode;
    use netpu_nn::zoo::ZooModel;
    use netpu_trace::MemorySink;
    use std::sync::Arc;

    fn tfc() -> Arc<netpu_nn::QuantMlp> {
        Arc::new(
            ZooModel::TfcW1A1
                .build_untrained(1, BnMode::Folded)
                .unwrap(),
        )
    }

    #[test]
    fn serves_a_single_request() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]))
            .expect_accepted();
        let served = ticket.wait().unwrap();
        assert_eq!(served.attempts, 1);
        assert_eq!(served.board, 0);
        assert_eq!(served.response.runs.len(), 1);
        let m = server.shutdown();
        assert_eq!((m.accepted, m.completed, m.failed), (1, 1, 0));
        assert_eq!(m.frames_completed, 1);
        assert_eq!((m.worker_panics, m.crash_requeued), (0, 0));
        assert!(m.measured_fps().is_some());
    }

    #[test]
    fn compile_errors_fail_without_charging_the_dma() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 3]))
            .expect_accepted();
        assert!(matches!(ticket.wait(), Err(DriverError::Compile(_))));
        let m = server.shutdown();
        assert_eq!((m.completed, m.failed), (0, 1));
        assert_eq!(m.dma_busy_us, 0.0);
    }

    #[test]
    fn strict_server_denies_range_unsound_loadables_at_admission() {
        let model = tfc();
        let mut loadable = compile(&model, &vec![5u8; 784]).unwrap();
        // An empty declared input interval is an error-class range
        // finding (NPC020) but leaves the stream structurally intact.
        loadable.set_declared_input_range(10, 5);

        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        match server.submit(InferRequest::loadable(loadable.clone())) {
            Submit::Denied(reason) => {
                assert_eq!(reason.code(), "INVALID_STREAM");
                let report = reason.report().expect("invalid carries the report");
                assert!(report.has_range_errors());
                assert!(!report.has_structural_errors());
                assert!(!reason.is_transient());
            }
            Submit::Accepted(_) => panic!("expected Denied"),
        }
        let m = server.shutdown();
        assert_eq!((m.rejected, m.range_flagged, m.range_rejected), (1, 1, 1));

        // A lenient server flags the same stream but serves it anyway.
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                strict_range: false,
                ..ServerConfig::default()
            },
        );
        let ticket = server
            .submit(InferRequest::loadable(loadable))
            .expect_accepted();
        ticket.wait().unwrap();
        let m = server.shutdown();
        assert_eq!((m.completed, m.range_flagged, m.range_rejected), (1, 1, 0));
    }

    #[test]
    fn certified_submission_gates_on_translation_validation() {
        let model = tfc();
        // Forge a loadable that passes the structural and range tiers
        // but computes a different function than the claimed source:
        // compile the model with one adjacent weight pair swapped.
        let mut forged = (*model).clone();
        let w = &mut forged.hidden[0].weights;
        let i = (0..w.len() - 1)
            .find(|&i| w[i] != w[i + 1])
            .expect("untrained weights are not constant");
        w.swap(i, i + 1);
        let forged = compile(&forged, &vec![5u8; 784]).unwrap();

        let strict = Server::start(
            Driver::builder().build(),
            ServerConfig {
                strict_equiv: true,
                ..ServerConfig::default()
            },
        );
        match strict.submit_certified(&model, InferRequest::loadable(forged.clone())) {
            Submit::Denied(reason) => {
                assert_eq!(reason.code(), "INVALID_STREAM");
                let report = reason.report().expect("invalid carries the report");
                assert!(report.fired(netpu_check::RuleId::Npc022));
                assert!(!report.has_structural_errors());
                assert!(!report.has_range_errors());
            }
            Submit::Accepted(_) => panic!("expected Denied"),
        }
        // The honest pair certifies equivalent and serves normally.
        let honest = compile(&model, &vec![5u8; 784]).unwrap();
        let ticket = strict
            .submit_certified(&model, InferRequest::loadable(honest))
            .expect_accepted();
        ticket.wait().unwrap();
        let m = strict.shutdown();
        assert_eq!((m.equiv_flagged, m.equiv_rejected), (1, 1));
        assert_eq!((m.accepted, m.rejected, m.completed), (1, 1, 1));

        // A lenient server counts the finding but serves the stream —
        // the third tier is opt-in, mirroring strict_range.
        let lenient = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = lenient
            .submit_certified(&model, InferRequest::loadable(forged))
            .expect_accepted();
        ticket.wait().unwrap();
        let m = lenient.shutdown();
        assert_eq!((m.equiv_flagged, m.equiv_rejected), (1, 0));
        assert_eq!(m.completed, 1);
    }

    #[test]
    fn closed_server_answers_closed() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        server.shared.queue.close();
        match server.submit(InferRequest::single(tfc(), vec![0u8; 784])) {
            Submit::Denied(RejectReason::Closed) => {}
            other => panic!("expected Denied(Closed), got {other:?}"),
        }
    }

    #[test]
    fn deadline_zero_times_out() {
        let server = Server::start(Driver::builder().build(), ServerConfig::default());
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]).with_deadline_us(1.0))
            .expect_accepted();
        match ticket.wait() {
            Err(DriverError::Timeout {
                deadline_us,
                elapsed_us,
            }) => {
                assert_eq!(deadline_us, 1.0);
                assert!(elapsed_us > 1.0);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
        let m = server.shutdown();
        assert_eq!(m.timed_out, 1);
        assert_eq!(m.completed, 0);
    }

    #[test]
    fn crashed_worker_requeues_and_completes() {
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                faults: FaultPlan::CrashFirstAttempts(1),
                ..ServerConfig::default()
            },
        );
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]))
            .expect_accepted();
        // The lone worker dies mid-DMA (poisoning the arbiter lock),
        // recovers its own request off the queue, and completes it.
        let served = ticket.wait().unwrap();
        assert_eq!(served.response.runs.len(), 1);
        let m = server.shutdown();
        assert_eq!((m.worker_panics, m.crash_requeued), (1, 1));
        assert_eq!((m.completed, m.failed), (1, 0));
    }

    #[test]
    fn exhausted_crash_budget_rejects_with_worker_crash() {
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                faults: FaultPlan::CrashFirstAttempts(5),
                crash_requeues: 1,
                ..ServerConfig::default()
            },
        );
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]))
            .expect_accepted();
        match ticket.wait() {
            Err(DriverError::Rejected(RejectReason::WorkerCrash { crashes })) => {
                assert_eq!(crashes, 2, "one requeue, then the budget is spent");
            }
            other => panic!("expected worker-crash rejection, got {other:?}"),
        }
        let m = server.shutdown();
        assert_eq!((m.worker_panics, m.crash_requeued), (2, 1));
        assert_eq!((m.completed, m.failed), (0, 1));
        // The poisoned arbiter still answers metrics queries.
        assert_eq!(m.makespan_us, 0.0);
    }

    #[test]
    fn crash_recovery_leaves_the_server_serving() {
        // After a crash-rejection, later requests complete normally:
        // the worker survived and the poisoned locks were absorbed.
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                faults: FaultPlan::CrashFirstAttempts(2),
                crash_requeues: 0,
                ..ServerConfig::default()
            },
        );
        for expect_crash in [true, true, false] {
            let outcome = server
                .submit(InferRequest::single(tfc(), vec![5u8; 784]))
                .expect_accepted()
                .wait();
            match (expect_crash, outcome) {
                (true, Err(DriverError::Rejected(RejectReason::WorkerCrash { .. }))) => {}
                (false, Ok(served)) => assert_eq!(served.response.runs.len(), 1),
                (expect_crash, outcome) => {
                    panic!("expect_crash={expect_crash}, got {outcome:?}")
                }
            }
        }
        let m = server.shutdown();
        assert_eq!((m.worker_panics, m.completed, m.failed), (2, 1, 2));
    }

    #[test]
    fn traced_lifecycle_verifies_through_replay() {
        let sink = Arc::new(MemorySink::new());
        let server = Server::start(
            Driver::builder().build(),
            ServerConfig {
                faults: FaultPlan::CrashFirstAttempts(1),
                trace: Some(Arc::clone(&sink) as Arc<dyn TraceSink>),
                ..ServerConfig::default()
            },
        );
        let ticket = server
            .submit(InferRequest::single(tfc(), vec![5u8; 784]))
            .expect_accepted();
        ticket.wait().unwrap();
        server.shutdown();
        let records = sink.take();
        let summary = netpu_trace::verify(&records).expect("trace verifies");
        assert_eq!((summary.requests, summary.completed), (1, 1));
        assert_eq!((summary.crashes, summary.requeues), (1, 1));
        assert_eq!(summary.grants, 1);
        assert!(summary.makespan_us > 0.0);
    }

    #[test]
    fn lock_recover_returns_data_from_a_poisoned_mutex() {
        let m = Arc::new(Mutex::new(7u32));
        let poisoner = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.lock().unwrap();
            panic!("poison the lock");
        })
        .join();
        assert!(m.is_poisoned());
        // Recovery hands out the data as the dying thread left it, and
        // the lock keeps working for every later acquisition.
        *lock_recover(&m) += 1;
        assert_eq!(*lock_recover(&m), 8);
        assert!(m.is_poisoned(), "recovery reads through, not clears");
    }

    #[test]
    fn lock_recover_is_a_plain_lock_when_unpoisoned() {
        let m = Mutex::new(vec![1, 2]);
        lock_recover(&m).push(3);
        assert_eq!(*lock_recover(&m), vec![1, 2, 3]);
    }
}
