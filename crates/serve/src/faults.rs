//! Stream fault injection for exercising the retry path.
//!
//! Reuses the workspace robustness suite's corruption model (XOR a bit
//! into the stream): flipping the low bit of word 0 breaks the `MAGIC`
//! signature, so the accelerator's own header validation rejects the
//! stream deterministically on the first word — a fast, guaranteed
//! `BadHeader` rather than a corrupted-payload coin flip.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What faults the serving layer injects into outgoing streams.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum FaultPlan {
    /// No injected faults.
    #[default]
    None,
    /// Every request's first `n` delivery attempts fail (deterministic;
    /// a request with a retry budget ≥ `n` eventually succeeds).
    FailFirstAttempts(u32),
    /// Each delivery attempt is independently corrupted with
    /// probability `rate`, drawn from a seeded generator.
    Random {
        /// Per-attempt corruption probability in `[0, 1]`.
        rate: f64,
        /// RNG seed, for reproducible schedules.
        seed: u64,
    },
    /// Kill the worker outright on the server's first `n` serving
    /// attempts: instead of corrupting the stream, the injector tells
    /// the worker to panic mid-DMA (while holding the arbiter lock),
    /// exercising the crash-only recovery path. Stateful and
    /// deterministic: exactly `n` workers die across the server's
    /// lifetime, so a crash-requeued request finds the plan spent on
    /// its next attempt.
    CrashFirstAttempts(u32),
}

/// Stateful injector built from a [`FaultPlan`]; one per server.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: StdRng,
    crashes_injected: u32,
}

impl FaultInjector {
    /// Builds the injector for one server instance.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let seed = match &plan {
            FaultPlan::Random { seed, .. } => *seed,
            _ => 0,
        };
        FaultInjector {
            plan,
            rng: StdRng::seed_from_u64(seed),
            crashes_injected: 0,
        }
    }

    /// Decides whether delivery attempt `attempt` (0-based) of a
    /// request should be corrupted and, if so, flips the header magic
    /// bit in `words`. Returns `true` when the stream was corrupted.
    pub fn corrupt(&mut self, attempt: u32, words: &mut [u64]) -> bool {
        let hit = match &self.plan {
            FaultPlan::None | FaultPlan::CrashFirstAttempts(_) => false,
            FaultPlan::FailFirstAttempts(n) => attempt < *n,
            FaultPlan::Random { rate, .. } => self.rng.gen::<f64>() < *rate,
        };
        if hit {
            if let Some(header) = words.first_mut() {
                *header ^= 1;
            }
        }
        hit
    }

    /// Decides whether the current serving attempt should kill its
    /// worker. Stateful across the whole server: under
    /// [`FaultPlan::CrashFirstAttempts`]`(n)` exactly the first `n`
    /// calls answer `true`, then the plan is spent.
    pub fn should_crash(&mut self) -> bool {
        match &self.plan {
            FaultPlan::CrashFirstAttempts(n) if self.crashes_injected < *n => {
                self.crashes_injected += 1;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_corrupts() {
        let mut inj = FaultInjector::new(FaultPlan::None);
        let mut words = vec![0x1234u64, 5];
        for attempt in 0..10 {
            assert!(!inj.corrupt(attempt, &mut words));
        }
        assert_eq!(words, vec![0x1234, 5]);
    }

    #[test]
    fn fail_first_attempts_is_deterministic() {
        let mut inj = FaultInjector::new(FaultPlan::FailFirstAttempts(2));
        let mut words = vec![0u64];
        assert!(inj.corrupt(0, &mut words));
        assert_eq!(words[0], 1);
        words[0] = 0;
        assert!(inj.corrupt(1, &mut words));
        words[0] = 0;
        assert!(!inj.corrupt(2, &mut words));
        assert_eq!(words[0], 0);
    }

    #[test]
    fn random_plan_is_seed_reproducible() {
        let draw = |seed| {
            let mut inj = FaultInjector::new(FaultPlan::Random { rate: 0.5, seed });
            (0..64)
                .map(|a| inj.corrupt(a, &mut [0u64]))
                .collect::<Vec<bool>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
        let hits = draw(9).iter().filter(|&&h| h).count();
        assert!((10..=54).contains(&hits), "rate 0.5 drew {hits}/64 hits");
    }

    #[test]
    fn crash_plan_spends_exactly_n_kills_and_never_corrupts() {
        let mut inj = FaultInjector::new(FaultPlan::CrashFirstAttempts(2));
        let mut words = vec![0x1234u64];
        assert!(!inj.corrupt(0, &mut words));
        assert_eq!(words[0], 0x1234);
        assert!(inj.should_crash());
        assert!(inj.should_crash());
        assert!(!inj.should_crash(), "plan is spent after n kills");
        let mut benign = FaultInjector::new(FaultPlan::None);
        assert!(!benign.should_crash());
    }

    #[test]
    fn corruption_breaks_the_stream_magic() {
        // The flipped bit lands in the MAGIC field, so the compiler's
        // own validator — and the accelerator's — must reject it.
        let model = netpu_nn::zoo::ZooModel::TfcW1A1
            .build_untrained(1, netpu_nn::export::BnMode::Folded)
            .unwrap();
        let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
        let mut words = loadable.words.clone();
        let mut inj = FaultInjector::new(FaultPlan::FailFirstAttempts(1));
        assert!(inj.corrupt(0, &mut words));
        assert!(matches!(
            netpu_compiler::stream::decode(&words),
            Err(netpu_compiler::StreamError::BadHeader(_))
        ));
    }
}
