//! Serving counters, latency histogram, and utilization snapshot.

use netpu_core::SlabBreakdown;
use serde::Serialize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Upper bucket edges of the latency histogram, µs. The last bucket is
/// unbounded.
pub const LATENCY_BUCKETS_US: [f64; 8] = [
    50.0,
    100.0,
    250.0,
    500.0,
    1_000.0,
    2_500.0,
    10_000.0,
    f64::INFINITY,
];

/// Lock-free counters the workers update while serving.
#[derive(Debug, Default)]
pub(crate) struct Counters {
    pub accepted: AtomicU64,
    pub rejected: AtomicU64,
    pub range_flagged: AtomicU64,
    pub range_rejected: AtomicU64,
    pub equiv_flagged: AtomicU64,
    pub equiv_rejected: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub retried: AtomicU64,
    pub timed_out: AtomicU64,
    pub worker_panics: AtomicU64,
    pub crash_requeued: AtomicU64,
    pub frames_completed: AtomicU64,
    pub slabs_full: AtomicU64,
    pub slabs_partial: AtomicU64,
    pub queue_high_water: AtomicUsize,
    pub latency_buckets: [AtomicU64; 8],
}

impl Counters {
    /// Records one completed request's end-to-end virtual latency.
    pub fn observe_latency(&self, latency_us: f64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&edge| latency_us <= edge)
            .unwrap_or(LATENCY_BUCKETS_US.len() - 1);
        self.latency_buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the queue high-water mark to at least `depth`.
    pub fn observe_queue_depth(&self, depth: usize) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// Records how a completed batch decomposed across the value
    /// kernels, as reported by the driver's [`SlabBreakdown`]: full
    /// 64-image slabs that ran on the bitsliced kernel, and per-frame
    /// fallback work (a bitsliced batch's sub-slab tail *or* a whole
    /// batch on a model the bitsliced kernel does not admit) in
    /// under-occupied slab-equivalents. Counting the fallback path from
    /// the breakdown instead of the raw frame count keeps the metric
    /// honest for fallback-only models, which run zero slabs.
    pub fn observe_batch_slabs(&self, breakdown: SlabBreakdown) {
        self.slabs_full
            .fetch_add(breakdown.slabs_full as u64, Ordering::Relaxed);
        self.slabs_partial.fetch_add(
            breakdown.partial_slab_equivalents() as u64,
            Ordering::Relaxed,
        );
    }
}

/// A point-in-time copy of everything the server measures.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused at admission (queue full or pre-flight
    /// verifier findings).
    pub rejected: u64,
    /// Submitted loadables whose pre-flight range analysis found
    /// error-class datapath unsoundness (NPC014/NPC018/NPC020),
    /// whether or not admission refused them.
    pub range_flagged: u64,
    /// Range-flagged submissions actually refused at admission
    /// (strict-range servers only; always ≤ `range_flagged`).
    pub range_rejected: u64,
    /// Certified submissions whose translation validation found
    /// error-class inequivalence against the claimed source model
    /// (NPC021/NPC022/NPC024), whether or not admission refused them.
    /// Only [`Server::submit_certified`](crate::Server::submit_certified)
    /// submissions can contribute.
    pub equiv_flagged: u64,
    /// Equivalence-flagged submissions actually refused at admission
    /// (strict-equiv servers only; always ≤ `equiv_flagged`).
    pub equiv_rejected: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed terminally (after exhausting retries).
    pub failed: u64,
    /// Delivery attempts that were retried after a stream fault.
    pub retried: u64,
    /// Requests whose deadline elapsed before completion.
    pub timed_out: u64,
    /// Worker panics absorbed by the crash-only recovery path
    /// (DESIGN.md §4.7). The worker thread survives every one.
    pub worker_panics: u64,
    /// Crashed requests put back on the admission queue for another
    /// attempt. The remaining `worker_panics` either had already
    /// delivered their outcome or were rejected with `WORKER_CRASH`.
    pub crash_requeued: u64,
    /// Frames across all completed requests (a batch counts each).
    pub frames_completed: u64,
    /// Completed batch slabs that filled all 64 image lanes of the
    /// bitsliced kernel. Only slabs the bitsliced kernel actually swept
    /// count; fallback-only models contribute zero.
    pub slabs_full: u64,
    /// Per-frame fallback work across completed batches, in
    /// under-occupied slab-equivalents (`ceil(fallback_frames / 64)`
    /// per batch): the sub-64-frame tail of a bitsliced batch, a whole
    /// small batch, or every frame of a batch whose model the
    /// bitsliced kernel does not admit.
    pub slabs_partial: u64,
    /// Deepest the admission queue ever got.
    pub queue_high_water: usize,
    /// `(upper_edge_us, count)` end-to-end latency histogram.
    pub latency_histogram: Vec<(f64, u64)>,
    /// Busy time per board on the virtual clock, µs.
    pub per_board_busy_us: Vec<f64>,
    /// Time the shared DMA engine spent streaming, µs.
    pub dma_busy_us: f64,
    /// Virtual time at which all granted work had finished, µs.
    pub makespan_us: f64,
}

impl MetricsSnapshot {
    pub(crate) fn gather(
        counters: &Counters,
        arbiter: &crate::arbiter::DmaArbiter,
    ) -> MetricsSnapshot {
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MetricsSnapshot {
            accepted: load(&counters.accepted),
            rejected: load(&counters.rejected),
            range_flagged: load(&counters.range_flagged),
            range_rejected: load(&counters.range_rejected),
            equiv_flagged: load(&counters.equiv_flagged),
            equiv_rejected: load(&counters.equiv_rejected),
            completed: load(&counters.completed),
            failed: load(&counters.failed),
            retried: load(&counters.retried),
            timed_out: load(&counters.timed_out),
            worker_panics: load(&counters.worker_panics),
            crash_requeued: load(&counters.crash_requeued),
            frames_completed: load(&counters.frames_completed),
            slabs_full: load(&counters.slabs_full),
            slabs_partial: load(&counters.slabs_partial),
            queue_high_water: counters.queue_high_water.load(Ordering::Relaxed),
            latency_histogram: LATENCY_BUCKETS_US
                .iter()
                .zip(&counters.latency_buckets)
                .map(|(&edge, count)| (edge, count.load(Ordering::Relaxed)))
                .collect(),
            per_board_busy_us: arbiter.board_busy_us().to_vec(),
            dma_busy_us: arbiter.dma_busy_us(),
            makespan_us: arbiter.makespan_us(),
        }
    }

    /// Sustained throughput over the virtual schedule: completed frames
    /// divided by the makespan. `None` before anything finished.
    pub fn measured_fps(&self) -> Option<f64> {
        (self.frames_completed > 0 && self.makespan_us > 0.0)
            .then(|| self.frames_completed as f64 * 1e6 / self.makespan_us)
    }

    /// Fraction of the makespan each board spent busy, in `[0, 1]`.
    pub fn board_utilization(&self) -> Vec<f64> {
        if self.makespan_us <= 0.0 {
            return vec![0.0; self.per_board_busy_us.len()];
        }
        self.per_board_busy_us
            .iter()
            .map(|&b| b / self.makespan_us)
            .collect()
    }

    /// Fraction of the makespan the shared DMA spent streaming — 1.0
    /// means the cluster is fully transfer-bound.
    pub fn dma_utilization(&self) -> f64 {
        if self.makespan_us <= 0.0 {
            0.0
        } else {
            self.dma_busy_us / self.makespan_us
        }
    }

    /// Fraction of completed batch slab-equivalents that filled all 64
    /// image lanes of the bitsliced kernel, in `[0, 1]`. Low occupancy
    /// means clients submit batches much smaller than
    /// [`netpu_core::SLAB_WIDTH`] (leaving lanes idle) or serve models
    /// that only admit the per-frame fallback walk. `None` before any
    /// batch completed.
    pub fn batch_slab_occupancy(&self) -> Option<f64> {
        let total = self.slabs_full + self.slabs_partial;
        (total > 0).then(|| self.slabs_full as f64 / total as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbiter::DmaArbiter;

    #[test]
    fn histogram_buckets_by_upper_edge() {
        let c = Counters::default();
        c.observe_latency(10.0);
        c.observe_latency(50.0); // inclusive upper edge
        c.observe_latency(51.0);
        c.observe_latency(1e9); // unbounded tail
        let snap = MetricsSnapshot::gather(&c, &DmaArbiter::new(1));
        assert_eq!(snap.latency_histogram[0], (50.0, 2));
        assert_eq!(snap.latency_histogram[1], (100.0, 1));
        assert_eq!(snap.latency_histogram.last().unwrap().1, 1);
        let total: u64 = snap.latency_histogram.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 4);
    }

    #[test]
    fn utilization_and_fps_derive_from_the_schedule() {
        let c = Counters::default();
        c.frames_completed.store(8, Ordering::Relaxed);
        let mut a = DmaArbiter::new(2);
        for _ in 0..8 {
            a.grant(0.0, 10.0, 15.0);
        }
        let snap = MetricsSnapshot::gather(&c, &a);
        // Transfer-bound: dma busy 80 µs over a makespan of ~85 µs.
        assert!((snap.dma_busy_us - 80.0).abs() < 1e-9);
        assert!(snap.dma_utilization() > 0.9);
        let fps = snap.measured_fps().unwrap();
        assert!((fps - 8.0 * 1e6 / snap.makespan_us).abs() < 1e-9);
        for u in snap.board_utilization() {
            assert!((0.0..=1.0).contains(&u));
        }
    }

    #[test]
    fn empty_snapshot_reports_no_rate() {
        let snap = MetricsSnapshot::gather(&Counters::default(), &DmaArbiter::new(3));
        assert_eq!(snap.measured_fps(), None);
        assert_eq!(snap.board_utilization(), vec![0.0; 3]);
        assert_eq!(snap.dma_utilization(), 0.0);
    }

    #[test]
    fn slab_occupancy_tracks_full_versus_partial() {
        let bitsliced = |frames: usize| SlabBreakdown {
            slabs_full: frames / netpu_core::SLAB_WIDTH,
            fallback_frames: frames % netpu_core::SLAB_WIDTH,
        };
        let c = Counters::default();
        let snap = MetricsSnapshot::gather(&c, &DmaArbiter::new(1));
        assert_eq!(snap.batch_slab_occupancy(), None);
        c.observe_batch_slabs(bitsliced(130)); // 2 full + tail
        c.observe_batch_slabs(bitsliced(64)); // exactly one full slab, no tail
        c.observe_batch_slabs(bitsliced(3)); // one partial slab
        let snap = MetricsSnapshot::gather(&c, &DmaArbiter::new(1));
        assert_eq!((snap.slabs_full, snap.slabs_partial), (3, 2));
        assert!((snap.batch_slab_occupancy().unwrap() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn fallback_only_batches_count_no_full_slabs() {
        // A 130-frame batch on a model the bitsliced kernel does not
        // admit runs zero slabs: all 130 frames are fallback work,
        // i.e. ceil(130/64) = 3 under-occupied slab-equivalents.
        let c = Counters::default();
        c.observe_batch_slabs(SlabBreakdown {
            slabs_full: 0,
            fallback_frames: 130,
        });
        let snap = MetricsSnapshot::gather(&c, &DmaArbiter::new(1));
        assert_eq!((snap.slabs_full, snap.slabs_partial), (0, 3));
        assert_eq!(snap.batch_slab_occupancy(), Some(0.0));
    }

    #[test]
    fn high_water_is_monotone() {
        let c = Counters::default();
        c.observe_queue_depth(3);
        c.observe_queue_depth(1);
        assert_eq!(c.queue_high_water.load(Ordering::Relaxed), 3);
    }
}
