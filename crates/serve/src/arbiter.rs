//! Shared-DMA arbitration in virtual time.
//!
//! A NetPU-M host owns one DMA engine shared by every board: while one
//! board's loadable streams, no other board can be fed (§V's loading
//! bottleneck at system scale). The arbiter serializes transfers and
//! tracks per-board compute occupancy on a **virtual** µs clock, so the
//! schedule it produces is deterministic and independent of how the
//! actual simulations interleave on host threads.
//!
//! Under closed-loop saturation (every request available at time 0) the
//! schedule's steady-state rate converges to exactly the analytic
//! [`ClusterThroughput`](netpu_runtime::ClusterThroughput) bound
//! `min(boards/latency, 1/transfer)` — see DESIGN.md §4.2 for the
//! argument.

/// The arbiter's answer to one transfer request.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Grant {
    /// Board the request was placed on.
    pub board: usize,
    /// Virtual time the DMA starts streaming, µs.
    pub start_us: f64,
    /// Virtual time the DMA is released, µs.
    pub transfer_end_us: f64,
    /// Virtual time the board finishes computing, µs.
    pub complete_us: f64,
}

/// Serializes stream transfers onto one DMA engine feeding `boards`
/// independent compute boards.
#[derive(Clone, Debug)]
pub struct DmaArbiter {
    dma_free_us: f64,
    board_free_us: Vec<f64>,
    dma_busy_us: f64,
    board_busy_us: Vec<f64>,
}

impl DmaArbiter {
    /// An idle arbiter over `boards` boards.
    pub fn new(boards: usize) -> DmaArbiter {
        assert!(boards > 0, "at least one board");
        DmaArbiter {
            dma_free_us: 0.0,
            board_free_us: vec![0.0; boards],
            dma_busy_us: 0.0,
            board_busy_us: vec![0.0; boards],
        }
    }

    /// Number of boards behind the DMA.
    pub fn boards(&self) -> usize {
        self.board_free_us.len()
    }

    /// Schedules one request: the stream occupies the DMA for
    /// `transfer_us`, then the chosen board is busy until the request's
    /// total latency `latency_us` has elapsed from the stream start
    /// (`latency_us` already contains the transfer, so it is clamped
    /// below by `transfer_us`).
    ///
    /// The request is placed on the earliest-free board; streaming
    /// starts once the request has arrived, the DMA is free, and that
    /// board is free.
    pub fn grant(&mut self, arrival_us: f64, transfer_us: f64, latency_us: f64) -> Grant {
        let board = self
            .board_free_us
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0); // constructor guarantees at least one board
        self.grant_on(board, arrival_us, transfer_us, latency_us)
    }

    /// Schedules one request on a *caller-chosen* board — the placement
    /// hook swap-aware schedulers (`netpu-fleet`) use when the board
    /// choice carries state the arbiter cannot see (which model's
    /// weights are resident). Timing semantics are identical to
    /// [`grant`](DmaArbiter::grant); only the board selection differs.
    /// Out-of-range boards clamp to the last board.
    pub fn grant_on(
        &mut self,
        board: usize,
        arrival_us: f64,
        transfer_us: f64,
        latency_us: f64,
    ) -> Grant {
        let board = board.min(self.board_free_us.len() - 1);
        let start = arrival_us
            .max(self.dma_free_us)
            .max(self.board_free_us[board]);
        let transfer_end = start + transfer_us;
        let complete = start + latency_us.max(transfer_us);
        self.dma_free_us = transfer_end;
        self.dma_busy_us += transfer_us;
        self.board_free_us[board] = complete;
        self.board_busy_us[board] += complete - start;
        Grant {
            board,
            start_us: start,
            transfer_end_us: transfer_end,
            complete_us: complete,
        }
    }

    /// Virtual time at which the DMA engine frees up.
    pub fn dma_free_us(&self) -> f64 {
        self.dma_free_us
    }

    /// Virtual time at which `board` frees up (out-of-range boards
    /// clamp to the last board).
    pub fn board_free_us(&self, board: usize) -> f64 {
        self.board_free_us[board.min(self.board_free_us.len() - 1)]
    }

    /// Virtual time at which everything granted so far has finished.
    pub fn makespan_us(&self) -> f64 {
        self.board_free_us
            .iter()
            .fold(self.dma_free_us, |acc, &b| acc.max(b))
    }

    /// Total time the DMA engine has been streaming, µs.
    pub fn dma_busy_us(&self) -> f64 {
        self.dma_busy_us
    }

    /// Total busy time per board, µs.
    pub fn board_busy_us(&self) -> &[f64] {
        &self.board_busy_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_board_serializes_at_the_latency() {
        // L > T: a single board is compute-bound, requests complete
        // back to back every L µs.
        let mut a = DmaArbiter::new(1);
        for k in 0..5 {
            let g = a.grant(0.0, 10.0, 40.0);
            assert_eq!(g.board, 0);
            assert!((g.start_us - 40.0 * k as f64).abs() < 1e-9);
            assert!((g.complete_us - 40.0 * (k + 1) as f64).abs() < 1e-9);
        }
        assert!((a.makespan_us() - 200.0).abs() < 1e-9);
        assert!((a.dma_busy_us() - 50.0).abs() < 1e-9);
    }

    #[test]
    fn boards_fill_least_loaded_first() {
        let mut a = DmaArbiter::new(3);
        let boards: Vec<usize> = (0..3).map(|_| a.grant(0.0, 5.0, 100.0).board).collect();
        let mut sorted = boards.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2], "each board used once: {boards:?}");
        // The fourth request waits for the first board to free up.
        let g = a.grant(0.0, 5.0, 100.0);
        assert!((g.start_us - 100.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_rate_converges_to_boards_over_latency() {
        // T ≪ L/boards: fps → boards / L.
        let (boards, t, l, n) = (4, 1.0, 100.0, 400);
        let mut a = DmaArbiter::new(boards);
        for _ in 0..n {
            a.grant(0.0, t, l);
        }
        let fps = n as f64 * 1e6 / a.makespan_us();
        let analytic = boards as f64 * 1e6 / l;
        assert!(
            (fps - analytic).abs() / analytic < 0.02,
            "fps {fps} vs analytic {analytic}"
        );
    }

    #[test]
    fn transfer_bound_rate_converges_to_inverse_transfer() {
        // T > L/boards: the shared DMA saturates and fps → 1 / T.
        let (boards, t, l, n) = (4, 30.0, 100.0, 400);
        let mut a = DmaArbiter::new(boards);
        for _ in 0..n {
            a.grant(0.0, t, l);
        }
        let fps = n as f64 * 1e6 / a.makespan_us();
        let analytic = 1e6 / t;
        assert!(
            (fps - analytic).abs() / analytic < 0.02,
            "fps {fps} vs analytic {analytic}"
        );
        // The DMA never overlaps transfers: busy time == n·T exactly.
        assert!((a.dma_busy_us() - n as f64 * t).abs() < 1e-6);
    }

    #[test]
    fn failed_transfers_charge_the_dma_only() {
        // latency == transfer models a stream the board rejected: the
        // DMA was occupied but no compute happened beyond it.
        let mut a = DmaArbiter::new(2);
        let g = a.grant(0.0, 8.0, 8.0);
        assert_eq!(g.transfer_end_us, g.complete_us);
        let g2 = a.grant(0.0, 8.0, 50.0);
        assert!((g2.start_us - 8.0).abs() < 1e-9);
    }

    #[test]
    fn arrivals_gate_the_start() {
        let mut a = DmaArbiter::new(2);
        let g = a.grant(25.0, 5.0, 10.0);
        assert!((g.start_us - 25.0).abs() < 1e-9);
        assert!((a.makespan_us() - 35.0).abs() < 1e-9);
    }
}
