#![deny(missing_docs)]
//! Multi-board serving layer for NetPU-M.
//!
//! The runtime's [`Cluster`](netpu_runtime::Cluster) *predicts* what a
//! multi-board deployment can sustain; this crate *executes* it. A
//! [`Server`] spawns one worker thread per board, admits
//! [`InferRequest`](netpu_runtime::InferRequest)s through a bounded
//! queue with explicit backpressure, serializes every stream transfer
//! through a shared-DMA [`arbiter`](crate::arbiter) on a virtual µs
//! clock, and enforces per-request deadlines and fault retries. The
//! measured saturation throughput reproduces the analytic
//! `min(boards/latency, 1/transfer)` bound — the §V loading bottleneck
//! at system scale (see DESIGN.md §4.2).
//!
//! Every refusal is a unified [`RejectReason`]; workers are crash-only
//! (a panicking worker requeues-or-rejects its request and keeps
//! serving, DESIGN.md §4.7); and an optional [`TraceSink`] records the
//! request lifecycle and DMA schedule in `netpu-trace`'s replayable
//! format.
//!
//! Built on `std::thread` + channels only; no async runtime.

pub mod arbiter;
pub mod faults;
pub mod metrics;
pub mod queue;
pub mod server;

pub use arbiter::{DmaArbiter, Grant};
pub use faults::{FaultInjector, FaultPlan};
pub use metrics::MetricsSnapshot;
pub use netpu_check::{AdmissionVerdict, RejectReason};
pub use netpu_trace::TraceSink;
pub use queue::{BoundedQueue, Push};
pub use server::{ServeResponse, Server, ServerConfig, Submit, Ticket};
