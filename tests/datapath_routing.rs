//! Figure 3 datapath coverage: the five crossbar paths, exercised both
//! as routing decisions and through full inferences whose correctness
//! depends on the right submodules being bypassed.

use netpu::arith::{ActivationKind, Fix, Precision, QuantParams};
use netpu::compiler;
use netpu::core::tnpu::{crossbar_route, Stage};
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::qmodel::{
    BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp,
};
use netpu::nn::reference;
use netpu_compiler::LayerType;

/// All Fig. 3 paths, enumerated: every (layer type, activation, BN
/// option) combination routes through a coherent stage sequence.
#[test]
fn every_crossbar_route_is_coherent() {
    for lt in [LayerType::Input, LayerType::Hidden, LayerType::Output] {
        for act in ActivationKind::ALL {
            for folded in [true, false] {
                let route = crossbar_route(lt, act, folded);
                // No duplicate stages, order preserved.
                let mut seen = Vec::new();
                for s in &route {
                    assert!(!seen.contains(s), "{lt:?}/{act}/{folded}: duplicate {s:?}");
                    seen.push(*s);
                }
                match lt {
                    LayerType::Input => {
                        assert!(!route.contains(&Stage::Mul));
                        assert!(!route.contains(&Stage::Accu));
                        assert!(!route.contains(&Stage::Bn));
                        assert!(route.contains(&Stage::Activ));
                    }
                    LayerType::Hidden => {
                        assert_eq!(route[0], Stage::Mul);
                        assert_eq!(route[1], Stage::Accu);
                        assert!(route.contains(&Stage::Activ));
                        assert_eq!(route.contains(&Stage::Bn), !folded);
                        assert_eq!(route.contains(&Stage::Quan), !act.bypasses_quan());
                    }
                    LayerType::Output => {
                        assert!(!route.contains(&Stage::Activ));
                        assert!(!route.contains(&Stage::Quan));
                        assert_eq!(route.contains(&Stage::Bn), !folded);
                    }
                }
            }
        }
    }
}

fn one_hot_model(
    act: LayerActivation,
    bn: Option<Vec<BnParams>>,
    bias: Option<Vec<i32>>,
) -> QuantMlp {
    // 8 inputs → 4 hidden → 2 classes; weights identity-ish so routing
    // bugs change the answer.
    QuantMlp {
        name: "routing".into(),
        input: InputLayer {
            len: 8,
            out_precision: Precision::W2,
            activation: LayerActivation::MultiThreshold {
                thresholds: vec![
                    vec![Fix::from_i32(64), Fix::from_i32(128), Fix::from_i32(192)];
                    8
                ],
            },
        },
        hidden: vec![HiddenLayer {
            in_len: 8,
            neurons: 4,
            weight_precision: Precision::W2,
            in_precision: Precision::W2,
            out_precision: Precision::W2,
            weights: vec![
                1, 1, 0, 0, 0, 0, 0, 0, //
                0, 0, 1, 1, 0, 0, 0, 0, //
                0, 0, 0, 0, 1, 1, 0, 0, //
                0, 0, 0, 0, 0, 0, 1, 1,
            ],
            bias,
            bn,
            activation: act,
        }],
        output: OutputLayer {
            in_len: 4,
            neurons: 2,
            weight_precision: Precision::W2,
            in_precision: Precision::W2,
            weights: vec![1, 1, 0, 0, 0, 0, 1, 1],
            bias: Some(vec![0, 0]),
            bn: None,
        },
    }
}

fn check_model(model: &QuantMlp) {
    model.validate().unwrap();
    let cfg = HwConfig::paper_instance();
    for seed in 0..8u8 {
        let pixels: Vec<u8> = (0..8)
            .map(|i| (i as u8).wrapping_mul(37).wrapping_add(seed * 29))
            .collect();
        let trace = reference::infer_traced(model, &pixels);
        let run = run_inference(&cfg, compiler::compile(model, &pixels).unwrap().words).unwrap();
        assert_eq!(run.class, trace.class, "seed {seed}");
        assert_eq!(run.score, trace.scores[trace.class]);
    }
}

/// Red path with folded BN + Multi-Threshold (BN and QUAN bypassed).
#[test]
fn hidden_folded_multithreshold_path() {
    let act = LayerActivation::MultiThreshold {
        thresholds: vec![vec![Fix::from_i32(1), Fix::from_i32(3), Fix::from_i32(5)]; 4],
    };
    check_model(&one_hot_model(act, None, Some(vec![0, 1, -1, 0])));
}

/// Red path with hardware BN + Sign.
#[test]
fn hidden_hardware_bn_sign_path() {
    let act = LayerActivation::Sign {
        thresholds: vec![Fix::from_i32(2); 4],
    };
    let bn = Some(vec![
        BnParams {
            scale_q16: Fix::q16_scale_from_f64(0.5),
            offset: Fix::from_f64(0.5),
        };
        4
    ]);
    let mut m = one_hot_model(act, bn, None);
    m.hidden[0].out_precision = Precision::W1;
    // A 1-bit activation output feeding 2-bit weights is legal only via
    // the integer path with binary *weights*; flip the output layer to
    // binary weights so the pairing rule holds.
    m.output.weight_precision = Precision::W1;
    m.output.in_precision = Precision::W1;
    m.output.weights = vec![1, 1, -1, -1, -1, -1, 1, 1];
    check_model(&m);
}

/// Red path with hardware BN + Sigmoid + QUAN (the full five-stage
/// pipeline).
#[test]
fn hidden_full_pipeline_sigmoid_path() {
    let act = LayerActivation::Sigmoid {
        quant: QuantParams::from_f64(3.0, 0.0),
    };
    let bn = Some(vec![
        BnParams {
            scale_q16: Fix::q16_scale_from_f64(0.25),
            offset: Fix::ZERO,
        };
        4
    ]);
    check_model(&one_hot_model(act, bn, None));
}

/// Tanh variant of the QUAN path.
#[test]
fn hidden_tanh_path() {
    let act = LayerActivation::Tanh {
        quant: QuantParams::from_f64(1.5, 1.5),
    };
    check_model(&one_hot_model(act, None, Some(vec![0; 4])));
}

/// Pink path with hardware BN on the output layer.
#[test]
fn output_hardware_bn_path() {
    let act = LayerActivation::MultiThreshold {
        thresholds: vec![vec![Fix::from_i32(1), Fix::from_i32(3), Fix::from_i32(5)]; 4],
    };
    let mut m = one_hot_model(act, None, Some(vec![0; 4]));
    m.output.bias = None;
    m.output.bn = Some(vec![
        BnParams {
            scale_q16: Fix::q16_scale_from_f64(2.0),
            offset: Fix::from_f64(-1.0),
        },
        BnParams {
            scale_q16: Fix::q16_scale_from_f64(2.0),
            offset: Fix::from_f64(1.0),
        },
    ]);
    check_model(&m);
}

/// Yellow path with Sign input quantization (BNN input layer).
#[test]
fn input_sign_path() {
    let mut m = one_hot_model(
        LayerActivation::Sign {
            thresholds: vec![Fix::ZERO; 4],
        },
        None,
        Some(vec![0; 4]),
    );
    m.input.out_precision = Precision::W1;
    m.input.activation = LayerActivation::Sign {
        thresholds: vec![Fix::from_i32(128); 8],
    };
    m.hidden[0].in_precision = Precision::W1;
    m.hidden[0].weight_precision = Precision::W1;
    m.hidden[0].out_precision = Precision::W1;
    m.hidden[0].weights = m.hidden[0]
        .weights
        .iter()
        .map(|&w| if w > 0 { 1 } else { -1 })
        .collect();
    m.output.weight_precision = Precision::W1;
    m.output.in_precision = Precision::W1;
    m.output.weights = vec![1, 1, -1, -1, -1, -1, 1, 1];
    check_model(&m);
}
