//! Figure 4 workflow observables: the Layer Initialization → Neuron
//! Initialization → Neuron Processing loop, validated through the cycle
//! statistics the NetPU reports per layer.

use netpu::compiler;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu_compiler::stream::{model_settings, weight_words};

fn run(model: ZooModel, cfg: &HwConfig) -> (netpu::core::netpu::InferenceRun, Vec<usize>) {
    let qm = model.build_untrained(5, BnMode::Folded).unwrap();
    let px = vec![100u8; qm.input.len];
    let words = compiler::compile(&qm, &px).unwrap().words;
    let per_layer_weight_words: Vec<usize> = model_settings(&qm).iter().map(weight_words).collect();
    (run_inference(cfg, words).unwrap(), per_layer_weight_words)
}

/// Every weight word streams through the LPU exactly once.
#[test]
fn weight_words_consumed_match_stream_sections() {
    let cfg = HwConfig::paper_instance();
    let (result, expected) = run(ZooModel::TfcW2A2, &cfg);
    for (layer, (stats, expect)) in result.stats.layers.iter().zip(&expected).enumerate() {
        assert_eq!(
            stats.weight_words, *expect as u64,
            "layer {layer} weight words"
        );
    }
}

/// The single-port weight buffer costs two cycles per word (Fig. 4's
/// Neuron Processing step under the §V loading bottleneck).
#[test]
fn weight_cycles_are_twice_the_words() {
    let cfg = HwConfig::paper_instance();
    let (result, _) = run(ZooModel::TfcW2A2, &cfg);
    for (layer, stats) in result.stats.layers.iter().enumerate().skip(1) {
        assert_eq!(stats.weight_cycles, 2 * stats.weight_words, "layer {layer}");
    }
}

/// Neuron Initialization repeats once per TNPU batch: its cycle count
/// scales with the number of neuron batches.
#[test]
fn init_cycles_scale_with_batches() {
    let few = HwConfig {
        tnpus_per_lpu: 2,
        ..HwConfig::paper_instance()
    };
    let many = HwConfig {
        tnpus_per_lpu: 8,
        ..HwConfig::paper_instance()
    };
    let (r_few, _) = run(ZooModel::TfcW2A2, &few);
    let (r_many, _) = run(ZooModel::TfcW2A2, &many);
    // Hidden layer 1 has 64 neurons: 32 batches at 2 TNPUs vs 8 at 8.
    let init_few = r_few.stats.layers[1].init_cycles;
    let init_many = r_many.stats.layers[1].init_cycles;
    // Per-neuron parameter loads are identical; only drain/write
    // overheads differ per batch, so totals are equal here — but drain
    // cycles must scale with batch count.
    assert_eq!(init_few, init_many);
    assert!(
        r_few.stats.layers[1].drain_cycles > r_many.stats.layers[1].drain_cycles,
        "{} !> {}",
        r_few.stats.layers[1].drain_cycles,
        r_many.stats.layers[1].drain_cycles
    );
}

/// The input layer (yellow path) streams no weights and reports its
/// cycles as input processing.
#[test]
fn input_layer_runs_without_weights() {
    let cfg = HwConfig::paper_instance();
    let (result, _) = run(ZooModel::TfcW1A1, &cfg);
    let input_stats = &result.stats.layers[0];
    assert_eq!(input_stats.weight_words, 0);
    assert_eq!(input_stats.weight_cycles, 0);
    assert!(input_stats.input_cycles > 0);
    // FC layers do the opposite.
    for stats in &result.stats.layers[1..] {
        assert_eq!(stats.input_cycles, 0);
        assert!(stats.weight_words > 0);
    }
}

/// The stream never starves the LPU: stall cycles stay at zero with the
/// full-bandwidth Network Input FIFO.
#[test]
fn no_stalls_at_full_stream_bandwidth() {
    let cfg = HwConfig::paper_instance();
    let (result, _) = run(ZooModel::SfcW1A1, &cfg);
    for (layer, stats) in result.stats.layers.iter().enumerate() {
        assert_eq!(stats.stall_cycles, 0, "layer {layer} stalled");
    }
}

/// Total latency decomposes into the documented phases.
#[test]
fn phase_decomposition_is_complete() {
    let cfg = HwConfig::paper_instance();
    let (result, _) = run(ZooModel::TfcW1A1, &cfg);
    let s = &result.stats;
    let lpu_total: u64 = s.layers.iter().map(|l| l.total()).sum();
    // Process cycles at the top level cover the LPU busy cycles plus
    // done-detection edges (one per layer).
    assert!(s.process_cycles >= lpu_total);
    assert!(s.process_cycles <= lpu_total + 2 * s.layers.len() as u64);
    assert!(s.settings_cycles >= 6); // header + 5 layer settings
    assert!(s.input_ingest_cycles == 98); // 784 pixels / 8 lanes
}
