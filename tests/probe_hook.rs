//! Datapath probe hook contract (DESIGN.md §4.4 soundness hook).
//!
//! Two obligations: a disabled probe costs nothing on the hot path (no
//! buffer is ever allocated across a full inference), and an enabled
//! probe's recorded values are the values the accelerator actually
//! produced — its output-layer score samples reproduce the class and
//! score `Driver::run` reports for the same loadable.

use netpu_compiler::compile;
use netpu_core::netpu::run_inference_probed;
use netpu_core::{run_inference_fast, HwConfig};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, InferRequest};
use netpu_sim::{DatapathProbe, ProbeStage};

fn tfc_words() -> Vec<u64> {
    let model = ZooModel::TfcW1A1
        .build_untrained(3, BnMode::Folded)
        .unwrap();
    compile(&model, &vec![100u8; 784]).unwrap().words
}

#[test]
fn disabled_probe_never_allocates_across_a_full_run() {
    let mut probe = DatapathProbe::disabled();
    let run = run_inference_probed(&HwConfig::paper_instance(), tfc_words(), &mut probe).unwrap();
    // The run completed (thousands of record() call sites were hit) yet
    // the probe never grew a buffer: the disabled path is one branch.
    assert!(run.cycles > 0);
    assert!(probe.is_empty());
    assert_eq!(probe.capacity(), 0);
    assert!(!probe.is_enabled());
}

#[test]
fn probed_run_matches_unprobed_fast_path() {
    let cfg = HwConfig::paper_instance();
    let words = tfc_words();
    let plain = run_inference_fast(&cfg, words.clone()).unwrap();
    let mut probe = DatapathProbe::enabled();
    let probed = run_inference_probed(&cfg, words, &mut probe).unwrap();
    assert_eq!(probed.class, plain.class);
    assert_eq!(probed.score, plain.score);
    assert_eq!(probed.cycles, plain.cycles);
    assert!(!probe.is_empty());
}

#[test]
fn probe_scores_reproduce_driver_outputs() {
    let cfg = HwConfig::paper_instance();
    let words = tfc_words();

    let driver = Driver::builder().hw(cfg).build();
    let loadable = netpu_compiler::Loadable {
        layout: netpu_compiler::file::layout_of(&words).unwrap(),
        words: words.clone(),
    };
    let response = driver.run(InferRequest::loadable(loadable)).unwrap();
    let measured = &response.runs[0];

    let mut probe = DatapathProbe::enabled();
    let run = run_inference_probed(&cfg, words, &mut probe).unwrap();
    assert_eq!(run.class, measured.class);

    // The output layer's Score samples are the MaxOut inputs: their
    // argmax is the reported class and their max the reported score.
    let out_layer = probe
        .samples()
        .iter()
        .map(|s| s.layer)
        .max()
        .expect("probe recorded samples");
    let scores: Vec<(usize, i64)> = probe
        .samples()
        .iter()
        .filter(|s| s.layer == out_layer && s.stage == ProbeStage::Score)
        .map(|s| (s.neuron, s.value))
        .collect();
    assert_eq!(scores.len(), 10, "TFC has ten output neurons");
    let &(best_neuron, best_score) = scores
        .iter()
        .max_by_key(|(neuron, value)| (*value, std::cmp::Reverse(*neuron)))
        .unwrap();
    assert_eq!(best_neuron, run.class);
    assert_eq!(best_score, run.score.raw());
}
