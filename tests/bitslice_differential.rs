//! Differential suite for the batch-major bitsliced kernel: on random
//! fully-binary models and batch sizes spanning several slabs, the
//! [`BitslicedMlp`] values must be bitwise identical to the per-frame
//! packed reference *and* to the tick-level accelerator, while
//! [`run_batch_fast`] cycle counts must equal the per-frame fast path
//! exactly (counts-vs-values split, DESIGN.md §4.5).

use netpu::arith::{Fix, Precision};
use netpu::compiler;
use netpu::core::{run_batch_fast, run_inference, run_inference_fast, BatchEngine, HwConfig};
use netpu::nn::export::BnMode;
use netpu::nn::qmodel::{
    BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp,
};
use netpu::nn::reference::{BitslicedMlp, PackedMlp};
use netpu::nn::zoo::ZooModel;
use netpu::runtime::Driver;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically builds a random *fully binary* model (W1A1
/// everywhere), the class the bitsliced kernel admits.
fn build_binary_model(
    seed: u64,
    input_len: usize,
    hidden_layers: usize,
    width: usize,
    classes: usize,
) -> QuantMlp {
    let mut rng = StdRng::seed_from_u64(seed);
    let sign_thresholds = |rng: &mut StdRng, n: usize, lo: i32, hi: i32| LayerActivation::Sign {
        thresholds: (0..n)
            .map(|_| Fix::from_i32(rng.gen_range(lo..hi)))
            .collect(),
    };
    let bipolar = |rng: &mut StdRng, n: usize| -> Vec<i32> {
        (0..n).map(|_| if rng.gen() { 1 } else { -1 }).collect()
    };

    let input_activation = sign_thresholds(&mut rng, input_len, 0, 255);
    let mut hidden = Vec::new();
    let mut prev_width = input_len;
    for _ in 0..hidden_layers {
        let weights = bipolar(&mut rng, width * prev_width);
        let use_bn = rng.gen_bool(0.5);
        let activation = sign_thresholds(&mut rng, width, -20, 20);
        hidden.push(HiddenLayer {
            in_len: prev_width,
            neurons: width,
            weight_precision: Precision::W1,
            in_precision: Precision::W1,
            out_precision: Precision::W1,
            weights,
            bias: if use_bn {
                None
            } else {
                Some((0..width).map(|_| rng.gen_range(-10..10)).collect())
            },
            bn: if use_bn {
                Some(
                    (0..width)
                        .map(|_| BnParams {
                            scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.01..2.0)),
                            offset: Fix::from_f64(rng.gen_range(-4.0..4.0)),
                        })
                        .collect(),
                )
            } else {
                None
            },
            activation,
        });
        prev_width = width;
    }

    let output = OutputLayer {
        in_len: prev_width,
        neurons: classes,
        weight_precision: Precision::W1,
        in_precision: Precision::W1,
        weights: bipolar(&mut rng, classes * prev_width),
        bias: None,
        bn: Some(
            (0..classes)
                .map(|_| BnParams {
                    scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.1..2.0)),
                    offset: Fix::from_f64(rng.gen_range(-2.0..2.0)),
                })
                .collect(),
        ),
    };

    QuantMlp {
        name: format!("binary-{seed}"),
        input: InputLayer {
            len: input_len,
            out_precision: Precision::W1,
            activation: input_activation,
        },
        hidden,
        output,
    }
}

fn random_frames(seed: u64, len: usize, n: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..len).map(|_| rng.gen()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Bitsliced ≡ packed ≡ tick-level accelerator on random binary
    /// models, for batch sizes from a single frame to several slabs
    /// plus a tail.
    #[test]
    fn bitsliced_equals_packed_and_sim_on_random_binary_models(
        seed in 0u64..10_000,
        input_len in 4usize..40,
        hidden_layers in 1usize..4,
        width in 2usize..20,
        classes in 2usize..6,
        batch in 1usize..=257,
        px_seed in 0u64..1_000,
    ) {
        let model = build_binary_model(seed, input_len, hidden_layers, width, classes);
        prop_assert!(model.validate().is_ok(), "generated model invalid");
        let frames = random_frames(px_seed, input_len, batch);

        let engine = BatchEngine::new(&model);
        prop_assert!(engine.is_bitsliced(), "binary model must take the bitsliced path");
        let sliced = BitslicedMlp::new(&model).unwrap();
        let packed = PackedMlp::new(&model);

        // Values: every frame bitwise-equal to the per-frame reference.
        let outputs = engine.run_slab(&frames);
        prop_assert_eq!(outputs.len(), frames.len());
        for (out, px) in outputs.iter().zip(&frames) {
            let trace = packed.infer_traced(px);
            prop_assert_eq!(out.class, trace.class);
            prop_assert_eq!(&out.scores, &trace.scores);
        }
        // One sub-slab call straight through the kernel, same answer.
        let head = frames.len().min(5);
        for (out, whole) in sliced.infer_slab(&frames[..head]).iter().zip(&outputs) {
            prop_assert_eq!(out, whole);
        }

        // Tick-level accelerator agrees on a sample of frames.
        let cfg = HwConfig::paper_instance();
        let mut tick_cycles = None;
        for px in frames.iter().take(3) {
            let words = compiler::compile(&model, px).unwrap().words;
            let run = run_inference(&cfg, words).unwrap();
            let trace = packed.infer_traced(px);
            prop_assert_eq!(run.class, trace.class);
            prop_assert_eq!(run.score, trace.scores[trace.class]);
            tick_cycles = Some(run.cycles);
        }

        // Counts: the batch fast path charges every frame the same
        // cycle count as the per-frame fast path and the tick model.
        let batch_runs = run_batch_fast(&cfg, &model, &frames).unwrap();
        prop_assert_eq!(batch_runs.len(), frames.len());
        let words = compiler::compile(&model, &frames[0]).unwrap().words;
        let single = run_inference_fast(&cfg, words).unwrap();
        prop_assert_eq!(single.cycles, tick_cycles.unwrap());
        for run in &batch_runs {
            prop_assert_eq!(run.cycles, single.cycles);
            prop_assert_eq!(run.stats.clone(), single.stats.clone());
        }
        prop_assert_eq!(&batch_runs[0], &single);
    }
}

/// The driver's slab-swept batch path reproduces per-frame inference
/// across the binary zoo, including the non-multiple-of-64 tail.
#[test]
fn driver_batch_matches_per_frame_across_binary_zoo() {
    let driver = Driver::builder().build();
    for (i, zoo) in [ZooModel::TfcW1A1, ZooModel::SfcW1A1, ZooModel::LfcW1A1]
        .iter()
        .enumerate()
    {
        let model = zoo.build_untrained(i as u64 + 11, BnMode::Folded).unwrap();
        // 67 frames: one full slab + 3-frame tail.
        let inputs = random_frames(i as u64 + 101, model.input.len, 67);
        let batch = driver.infer_batch(&model, &inputs).unwrap();
        assert_eq!(batch.len(), 67, "{}", zoo.name());
        for (j, (run, px)) in batch.iter().zip(&inputs).enumerate().step_by(13) {
            let single = driver.infer(&model, px).unwrap();
            assert_eq!(run.class, single.class, "{} frame {j}", zoo.name());
            assert_eq!(run.cycles, single.cycles, "{} frame {j}", zoo.name());
            assert_eq!(
                run.probabilities,
                single.probabilities,
                "{} frame {j}",
                zoo.name()
            );
        }
    }
}
