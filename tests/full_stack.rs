//! Full-stack integration: dataset → QAT training → streamlining →
//! loadable compilation → cycle-level inference, cross-checked at every
//! stage.

use netpu::compiler;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::dataset;
use netpu::nn::export::BnMode;
use netpu::nn::float::ActSpec;
use netpu::nn::train::TrainConfig;
use netpu::nn::zoo::ZooModel;
use netpu::nn::{export, metrics, reference, FloatMlp, LayerSpec, MlpSpec};

fn train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 5,
        ..TrainConfig::default()
    }
}

#[test]
fn trained_zoo_model_survives_the_whole_pipeline() {
    let (train_ds, test_ds) = dataset::easy_splits(600, 60, 77);
    let (_, qm) = ZooModel::TfcW2A2
        .train(&train_ds, &train_cfg(), BnMode::Folded)
        .unwrap();
    // Stage 1: the exported model classifies well in software.
    let acc = metrics::accuracy(&qm, &test_ds);
    assert!(acc > 0.6, "reference accuracy {acc}");

    // Stage 2: the loadable decodes back to the identical model.
    let pixels = &test_ds.examples[0].pixels;
    let loadable = compiler::compile(&qm, pixels).unwrap();
    let decoded = compiler::decode(&loadable.words).unwrap();
    let mut anon = qm.clone();
    anon.name = String::new();
    assert_eq!(decoded.model, anon);

    // Stage 3: the accelerator agrees with the reference on every image.
    let cfg = HwConfig::paper_instance();
    let mut loadable = loadable;
    for e in test_ds.examples.iter().take(20) {
        loadable.replace_input(&e.pixels).unwrap();
        let run = run_inference(&cfg, loadable.words.clone()).unwrap();
        assert_eq!(run.class, reference::infer(&qm, &e.pixels));
    }
}

#[test]
fn hardware_bn_pipeline_matches_reference_after_training() {
    let (train_ds, test_ds) = dataset::easy_splits(500, 20, 13);
    let (_, qm) = ZooModel::TfcW2A2
        .train(&train_ds, &train_cfg(), BnMode::Hardware)
        .unwrap();
    assert!(qm.hidden[0].bn.is_some());
    let cfg = HwConfig::paper_instance();
    for e in &test_ds.examples {
        let loadable = compiler::compile(&qm, &e.pixels).unwrap();
        let run = run_inference(&cfg, loadable.words).unwrap();
        assert_eq!(run.class, reference::infer(&qm, &e.pixels));
    }
}

#[test]
fn relu_quan_path_works_end_to_end() {
    // A model using the ReLU + QUAN hardware path (not thresholds).
    let spec = MlpSpec {
        name: "relu-quan".into(),
        input_len: dataset::IMAGE_PIXELS,
        input_act: ActSpec::Hwgq { bits: 4 },
        layers: vec![
            LayerSpec {
                neurons: 20,
                weight_bits: 4,
                act: ActSpec::ReluQuant { bits: 4 },
                batch_norm: true,
            },
            LayerSpec {
                neurons: 10,
                weight_bits: 4,
                act: ActSpec::None,
                batch_norm: true,
            },
        ],
    };
    let (train_ds, test_ds) = dataset::easy_splits(400, 15, 3);
    let mut fm = FloatMlp::init(spec, 1);
    netpu::nn::train::train(&mut fm, &train_ds, &train_cfg());
    let qm = export::export(
        &fm,
        &export::ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .unwrap();
    assert!(matches!(
        qm.hidden[0].activation,
        netpu::nn::LayerActivation::Relu { .. }
    ));
    let cfg = HwConfig::paper_instance();
    for e in &test_ds.examples {
        let loadable = compiler::compile(&qm, &e.pixels).unwrap();
        let run = run_inference(&cfg, loadable.words).unwrap();
        assert_eq!(run.class, reference::infer(&qm, &e.pixels));
    }
}

#[test]
fn deep_models_exercise_lpu_recycling() {
    // Seven FC layers on a two-LPU ring force each LPU to be recycled
    // three times within one inference (Fig. 2 right).
    let mut layers: Vec<LayerSpec> = (0..6)
        .map(|_| LayerSpec {
            neurons: 24,
            weight_bits: 2,
            act: ActSpec::Hwgq { bits: 2 },
            batch_norm: true,
        })
        .collect();
    layers.push(LayerSpec {
        neurons: 10,
        weight_bits: 2,
        act: ActSpec::None,
        batch_norm: true,
    });
    let spec = MlpSpec {
        name: "deep".into(),
        input_len: dataset::IMAGE_PIXELS,
        input_act: ActSpec::Hwgq { bits: 2 },
        layers,
    };
    let fm = FloatMlp::init(spec, 2);
    let qm = export::export(
        &fm,
        &export::ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .unwrap();
    // 1 input + 6 hidden + 1 output layers.
    assert_eq!(qm.layer_count(), 8);
    let cfg = HwConfig::paper_instance();
    let pixels = vec![77u8; dataset::IMAGE_PIXELS];
    let loadable = compiler::compile(&qm, &pixels).unwrap();
    let run = run_inference(&cfg, loadable.words).unwrap();
    assert_eq!(run.class, reference::infer(&qm, &pixels));
    assert_eq!(run.stats.layers.len(), 8);
}

#[test]
fn accuracy_ordering_follows_precision() {
    // More precision should not hurt on the same data (w1a1 ≤ w2a2,
    // allowing a small tolerance for training noise).
    let (train_ds, test_ds) = dataset::easy_splits(800, 150, 55);
    let (_, w1) = ZooModel::TfcW1A1
        .train(&train_ds, &train_cfg(), BnMode::Folded)
        .unwrap();
    let (_, w2) = ZooModel::TfcW2A2
        .train(&train_ds, &train_cfg(), BnMode::Folded)
        .unwrap();
    let a1 = metrics::accuracy(&w1, &test_ds);
    let a2 = metrics::accuracy(&w2, &test_ds);
    assert!(
        a2 + 0.1 >= a1,
        "2-bit accuracy {a2} unexpectedly below 1-bit {a1}"
    );
}
