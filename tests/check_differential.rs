//! Differential validation of the static verifier (DESIGN.md §4.3).
//!
//! Two obligations:
//! * every compiled zoo loadable is **accepted** (no error-severity
//!   findings — the checker never refuses a stream the accelerator
//!   runs), and
//! * over a proptest-mutated corpus (flipped header/setting bits,
//!   truncated sections, corrupted parameter words), whenever the
//!   cycle-level model errors **or panics** on a stream, the checker
//!   reports an error for it — **zero false accepts**.

use netpu_check::check_words;
use netpu_compiler::compile;
use netpu_core::{run_inference_fast, HwConfig};
use netpu_nn::export::BnMode;
use netpu_nn::zoo::ZooModel;
use proptest::prelude::*;

/// `true` when the accelerator model fails on the stream — by returning
/// an error or by panicking (a panic in the model is exactly the class
/// of crash the pre-flight must fence off).
fn sim_rejects(cfg: HwConfig, words: &[u64]) -> bool {
    let words = words.to_vec();
    let outcome = std::panic::catch_unwind(move || run_inference_fast(&cfg, words));
    !matches!(outcome, Ok(Ok(_)))
}

#[test]
fn every_zoo_loadable_is_accepted() {
    let cfg = HwConfig::paper_instance();
    for model in ZooModel::ALL {
        for bn in [BnMode::Folded, BnMode::Hardware] {
            let mlp = model.build_untrained(11, bn).unwrap();
            let loadable = compile(&mlp, &vec![0u8; mlp.input.len]).unwrap();
            let report = netpu_check::check(&loadable, &cfg);
            assert!(
                !report.has_errors(),
                "{model:?}/{bn:?} falsely rejected:\n{report}"
            );
            assert!(
                !sim_rejects(cfg, &loadable.words),
                "{model:?}/{bn:?} rejected by the simulator"
            );
        }
    }
}

/// One mutation applied to a valid stream.
#[derive(Clone, Debug)]
enum Mutation {
    /// Flip bit `bit` of word `word` (header / settings / early body).
    FlipBit { word: usize, bit: usize },
    /// Cut the stream to `keep` words.
    Truncate { keep: usize },
    /// Overwrite word `word` with a constant.
    Smash { word: usize, value: u64 },
}

fn apply(words: &[u64], m: &Mutation) -> Vec<u64> {
    let mut out = words.to_vec();
    match *m {
        Mutation::FlipBit { word, bit } => out[word % words.len()] ^= 1u64 << (bit % 64),
        Mutation::Truncate { keep } => out.truncate(keep % words.len()),
        Mutation::Smash { word, value } => {
            let i = word % words.len();
            out[i] = value;
        }
    }
    out
}

fn mutation() -> impl Strategy<Value = Mutation> {
    (0usize..4, 0usize..100_000, 0usize..64, any::<u64>()).prop_map(|(kind, word, bit, value)| {
        match kind {
            // Bias flips toward the header + settings region where the
            // protocol-level invariants live, but cover the whole stream.
            0 => Mutation::FlipBit {
                word: word % 8,
                bit,
            },
            1 => Mutation::FlipBit { word, bit },
            2 => Mutation::Truncate { keep: word },
            _ => Mutation::Smash { word, value },
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Zero false accepts: sim failure ⇒ checker error.
    #[test]
    fn no_false_accepts(m in mutation()) {
        // A small zoo model keeps each simulated survivor cheap.
        let mlp = ZooModel::TfcW1A1.build_untrained(3, BnMode::Folded).unwrap();
        let loadable = compile(&mlp, &vec![0u8; 784]).unwrap();
        let cfg = HwConfig::paper_instance();

        let mutated = apply(&loadable.words, &m);
        let report = check_words(&mutated, &cfg);
        if !report.has_errors() {
            // The checker admitted the stream: the accelerator must run
            // it to completion without an error or a panic.
            let hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(|_| {})); // silence expected-panic spew
            let rejected = sim_rejects(cfg, &mutated);
            std::panic::set_hook(hook);
            prop_assert!(
                !rejected,
                "FALSE ACCEPT: checker passed a stream the simulator rejects ({m:?})"
            );
        }
    }
}
