//! Differential soundness of the range analyzer (DESIGN.md §4.4).
//!
//! The abstract interpreter promises *sound* intervals: every value the
//! datapath actually produces must land inside the proved per-neuron
//! bound. The [`DatapathProbe`] records every intermediate accumulator,
//! post-BN word, activation level, and output score; this suite replays
//! probed runs for the whole model zoo and 1000+ random models and
//! asserts zero out-of-interval observations.
//!
//! It also pins the admission consequence: a stream whose worst-case
//! prefix sums provably exceed the configured accumulator (NPC014) is
//! refused by `Driver::run` and by `netpu-serve` admission — while a
//! lenient driver still runs it, because the simulator completes.

use netpu_arith::{Fix, Precision, QuantParams};
use netpu_check::{check_words_analyzed, RangeAnalysis, RuleId};
use netpu_compiler::compile;
use netpu_core::netpu::run_inference_probed;
use netpu_core::HwConfig;
use netpu_nn::export::BnMode;
use netpu_nn::qmodel::{BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp};
use netpu_nn::zoo::ZooModel;
use netpu_runtime::{Driver, DriverError, InferRequest};
use netpu_serve::{Server, ServerConfig, Submit};
use netpu_sim::{DatapathProbe, ProbeSample, ProbeStage};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts every probed sample lies inside its proved interval.
fn assert_samples_bounded(samples: &[ProbeSample], analysis: &RangeAnalysis, tag: &str) {
    for s in samples {
        let nb = &analysis.layers[s.layer].neurons[s.neuron];
        let (bound, what) = match s.stage {
            ProbeStage::Accumulator => (
                nb.acc.map(|(lo, hi)| (i64::from(lo), i64::from(hi))),
                "accumulator",
            ),
            ProbeStage::PostBn => (nb.post_bn, "post-BN"),
            ProbeStage::Level => (
                nb.level.map(|(lo, hi)| (i64::from(lo), i64::from(hi))),
                "level",
            ),
            ProbeStage::Score => (nb.score, "score"),
        };
        let Some((lo, hi)) = bound else {
            panic!(
                "{tag}: layer {} neuron {} has a probed {what} sample but no proved bound",
                s.layer, s.neuron
            );
        };
        assert!(
            lo <= s.value && s.value <= hi,
            "{tag}: layer {} neuron {} {what} = {} escapes proved [{lo}, {hi}]",
            s.layer,
            s.neuron,
            s.value
        );
    }
}

/// Probes one run of `words` and checks it against the analysis.
fn assert_sound(words: &[u64], cfg: &HwConfig, tag: &str) {
    let (report, analysis) = check_words_analyzed(words, cfg);
    let analysis = analysis.unwrap_or_else(|| {
        panic!("{tag}: structurally rejected, no analysis:\n{report}");
    });
    let mut probe = DatapathProbe::enabled();
    let run = run_inference_probed(cfg, words.to_vec(), &mut probe)
        .unwrap_or_else(|e| panic!("{tag}: simulator failed: {e}"));
    assert!(!probe.is_empty(), "{tag}: probe recorded nothing");
    assert_samples_bounded(probe.samples(), &analysis, tag);
    // The winning score itself is a Score-stage sample, so it must also
    // sit inside the output layer's proved interval.
    let out = analysis.layers.len() - 1;
    let (lo, hi) = analysis.layers[out].neurons[run.class]
        .score
        .expect("output neurons always have score bounds");
    assert!(lo <= run.score.raw() && run.score.raw() <= hi);
}

#[test]
fn zoo_probed_runs_stay_inside_proved_bounds() {
    let cfg = HwConfig::paper_instance();
    for model in ZooModel::ALL {
        for bn in [BnMode::Folded, BnMode::Hardware] {
            let mlp = model.build_untrained(11, bn).unwrap();
            let mut rng = StdRng::seed_from_u64(17);
            let pixels: Vec<u8> = (0..mlp.input.len).map(|_| rng.gen()).collect();
            let loadable = compile(&mlp, &pixels).unwrap();
            assert_sound(&loadable.words, &cfg, &format!("{model:?}/{bn:?}"));
        }
    }
}

/// Deterministically builds a random-but-valid model from a seed — the
/// same construction as `tests/random_models.rs`, kept small so a
/// thousand probed runs stay fast.
fn build_model(seed: u64, input_len: usize, hidden_layers: usize, width: usize) -> QuantMlp {
    let mut rng = StdRng::seed_from_u64(seed);
    let act_bits: u8 = [1u8, 2, 2, 4][rng.gen_range(0..4usize)];
    let out_prec = Precision::new(act_bits).unwrap();

    let input_activation = if act_bits == 1 {
        LayerActivation::Sign {
            thresholds: (0..input_len)
                .map(|_| Fix::from_i32(rng.gen_range(0..255)))
                .collect(),
        }
    } else {
        LayerActivation::MultiThreshold {
            thresholds: (0..input_len)
                .map(|_| {
                    let mut t: Vec<i32> = (0..out_prec.multi_threshold_count())
                        .map(|_| rng.gen_range(0..255))
                        .collect();
                    t.sort_unstable();
                    t.into_iter().map(Fix::from_i32).collect()
                })
                .collect(),
        }
    };

    let mut hidden = Vec::new();
    let mut prev_width = input_len;
    let prev_prec = out_prec;
    for _ in 0..hidden_layers {
        let wp = if prev_prec.is_binary() {
            Precision::W1
        } else {
            Precision::new([1u8, 2, 4][rng.gen_range(0..3usize)]).unwrap()
        };
        let weights: Vec<i32> = (0..width * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect();
        let use_bn = rng.gen_bool(0.5);
        let out = prev_prec;
        let activation = if out.is_binary() {
            LayerActivation::Sign {
                thresholds: (0..width)
                    .map(|_| Fix::from_i32(rng.gen_range(-20..20)))
                    .collect(),
            }
        } else if rng.gen_bool(0.3) {
            let quant = QuantParams::from_f64(rng.gen_range(0.25..4.0), rng.gen_range(0.0..1.0));
            match rng.gen_range(0..3) {
                0 => LayerActivation::Relu { quant },
                1 => LayerActivation::Sigmoid { quant },
                _ => LayerActivation::Tanh { quant },
            }
        } else {
            LayerActivation::MultiThreshold {
                thresholds: (0..width)
                    .map(|_| {
                        let mut t: Vec<i32> = (0..out.multi_threshold_count())
                            .map(|_| rng.gen_range(-50..50))
                            .collect();
                        t.sort_unstable();
                        t.into_iter().map(Fix::from_i32).collect()
                    })
                    .collect(),
            }
        };
        let use_bn = use_bn
            || matches!(
                activation,
                LayerActivation::Relu { .. }
                    | LayerActivation::Sigmoid { .. }
                    | LayerActivation::Tanh { .. }
            );
        hidden.push(HiddenLayer {
            in_len: prev_width,
            neurons: width,
            weight_precision: wp,
            in_precision: prev_prec,
            out_precision: out,
            weights,
            bias: if use_bn {
                None
            } else {
                Some((0..width).map(|_| rng.gen_range(-10..10)).collect())
            },
            bn: if use_bn {
                Some(
                    (0..width)
                        .map(|_| BnParams {
                            scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.01..2.0)),
                            offset: Fix::from_f64(rng.gen_range(-4.0..4.0)),
                        })
                        .collect(),
                )
            } else {
                None
            },
            activation,
        });
        prev_width = width;
    }

    let wp = if prev_prec.is_binary() {
        Precision::W1
    } else {
        Precision::W2
    };
    let classes = 3;
    let output = OutputLayer {
        in_len: prev_width,
        neurons: classes,
        weight_precision: wp,
        in_precision: prev_prec,
        weights: (0..classes * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect(),
        bias: None,
        bn: Some(
            (0..classes)
                .map(|_| BnParams {
                    scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.1..2.0)),
                    offset: Fix::from_f64(rng.gen_range(-2.0..2.0)),
                })
                .collect(),
        ),
    };

    QuantMlp {
        name: String::new(),
        input: InputLayer {
            len: input_len,
            out_precision: out_prec,
            activation: input_activation,
        },
        hidden,
        output,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1000))]

    /// ≥1000 random streams: zero out-of-interval observations.
    #[test]
    fn random_probed_runs_stay_inside_proved_bounds(
        seed in 0u64..100_000,
        input_len in 4usize..24,
        hidden_layers in 1usize..4,
        width in 2usize..12,
        px_seed in 0u64..1_000,
    ) {
        let model = build_model(seed, input_len, hidden_layers, width);
        prop_assert!(model.validate().is_ok(), "generated model invalid");
        let mut rng = StdRng::seed_from_u64(px_seed);
        let pixels: Vec<u8> = (0..input_len).map(|_| rng.gen()).collect();
        let loadable = compile(&model, &pixels).unwrap();
        assert_sound(
            &loadable.words,
            &HwConfig::paper_instance(),
            &format!("random seed {seed}/{px_seed}"),
        );
    }
}

#[test]
fn narrow_accumulator_streams_are_refused_at_admission() {
    let model = ZooModel::TfcW2A2
        .build_untrained(7, BnMode::Folded)
        .unwrap();
    let loadable = compile(&model, &vec![0u8; 784]).unwrap();
    let hw = HwConfig {
        accumulator_bits: 8,
        ..HwConfig::paper_instance()
    };

    // Driver admission: strict (the default) refuses with the range
    // finding, before any simulation or DMA time is spent.
    let strict = Driver::builder().hw(hw).build();
    let err = strict
        .run(InferRequest::loadable(loadable.clone()))
        .unwrap_err();
    let DriverError::Rejected(reason) = err else {
        panic!("expected a pre-flight rejection, got {err}");
    };
    assert_eq!(reason.code(), "INVALID_STREAM");
    let report = reason
        .report()
        .expect("INVALID_STREAM carries the report")
        .clone();
    assert!(report.fired(RuleId::Npc014));
    assert!(report.has_range_errors() && !report.has_structural_errors());

    // A lenient driver runs the same stream: the simulator completes,
    // the finding is about provable numeric unsafety, not a crash.
    let lenient = Driver::builder().hw(hw).strict_range(false).build();
    lenient
        .run(InferRequest::loadable(loadable.clone()))
        .expect("lenient drivers admit range-unsound streams");

    // Serve admission mirrors the driver's strict default.
    let server = Server::start(Driver::builder().hw(hw).build(), ServerConfig::default());
    match server.submit(InferRequest::loadable(loadable)) {
        Submit::Denied(reason) => {
            let report = reason.report().expect("denial carries the verifier report");
            assert!(report.fired(RuleId::Npc014) && report.has_range_errors());
            assert!(
                reason.rules().iter().any(|(r, _)| *r == RuleId::Npc014),
                "the unified reason should surface NPC014: {:?}",
                reason.rules()
            );
        }
        other => panic!("expected Submit::Denied, got {other:?}"),
    }
    let metrics = server.shutdown();
    assert_eq!(metrics.range_flagged, 1);
    assert_eq!(metrics.range_rejected, 1);
}
