//! CNN-on-NetPU-M integration: a small convolutional network lowered
//! onto the FC substrate, trained with QAT, and run bit-exactly through
//! the cycle-level accelerator (§V future work, implemented).

use netpu::compiler;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::conv::{convnet_to_mlp, AvgPool2d, Conv2d, ConvStage};
use netpu::nn::dataset;
use netpu::nn::export::{export, BnMode, ExportConfig};
use netpu::nn::float::ActSpec;
use netpu::nn::train::{train, TrainConfig};
use netpu::nn::{metrics, reference};

fn small_cnn(seed: u64) -> netpu::nn::FloatMlp {
    let conv = Conv2d {
        in_channels: 1,
        in_height: 28,
        in_width: 28,
        out_channels: 4,
        kernel: 3,
        stride: 2,
        padding: 0,
    };
    let pool = AvgPool2d {
        channels: 4,
        in_height: 13,
        in_width: 13,
        window: 2,
    };
    convnet_to_mlp(
        "cnn-w2a2",
        dataset::IMAGE_PIXELS,
        ActSpec::Hwgq { bits: 2 },
        &[
            ConvStage::Conv(conv, ActSpec::Hwgq { bits: 2 }, 2),
            ConvStage::Pool(pool, ActSpec::Hwgq { bits: 2 }, 2),
            ConvStage::Dense(10, ActSpec::None, 2),
        ],
        seed,
    )
}

#[test]
fn lowered_cnn_trains_and_runs_on_the_accelerator() {
    let (train_ds, test_ds) = dataset::easy_splits(800, 60, 33);
    let mut cnn = small_cnn(3);
    train(
        &mut cnn,
        &train_ds,
        &TrainConfig {
            epochs: 6,
            ..TrainConfig::default()
        },
    );
    let qm = export(
        &cnn,
        &ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .unwrap();
    qm.validate().unwrap();
    // The lowered conv layer fits the architecture's width ceiling.
    assert_eq!(qm.hidden[0].neurons, 4 * 13 * 13);
    assert!(qm.hidden[0].neurons <= netpu::nn::qmodel::MAX_LAYER_WIDTH);

    let acc = metrics::accuracy(&qm, &test_ds);
    assert!(acc > 0.6, "lowered CNN accuracy {acc}");

    // Bit-exact on the accelerator.
    let cfg = HwConfig::paper_instance();
    for e in test_ds.examples.iter().take(8) {
        let loadable = compiler::compile(&qm, &e.pixels).unwrap();
        let run = run_inference(&cfg, loadable.words).unwrap();
        assert_eq!(run.class, reference::infer(&qm, &e.pixels));
    }
}

#[test]
fn lowered_cnn_latency_reflects_unrolled_weight_volume() {
    // Weight sharing is traded away: the conv layer streams
    // out_len × in_len weights. The latency model must charge for that.
    let cnn = small_cnn(4);
    let qm = export(
        &cnn,
        &ExportConfig {
            bn_mode: BnMode::Folded,
        },
    )
    .unwrap();
    let cfg = HwConfig::paper_instance();
    let px = vec![128u8; dataset::IMAGE_PIXELS];
    let run = run_inference(&cfg, compiler::compile(&qm, &px).unwrap().words).unwrap();
    let settings = netpu_compiler::stream::model_settings(&qm);
    let weight_words: usize = settings
        .iter()
        .map(netpu_compiler::stream::weight_words)
        .sum();
    // Two cycles per weight word dominate the cycle count.
    assert!(run.cycles as f64 > 1.8 * weight_words as f64);
    assert!((run.cycles as f64) < 2.6 * weight_words as f64 + 20_000.0);
}
