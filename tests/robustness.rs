//! Fault-injection robustness: whatever bytes arrive on the stream, the
//! accelerator must terminate — with a clean error or a (possibly
//! wrong) classification — never a panic, hang, or runaway simulation.

use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn base_words() -> Vec<u64> {
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let px = vec![100u8; 784];
    netpu_compiler::compile(&model, &px).unwrap().words
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-word corruption anywhere in the stream terminates cleanly.
    ///
    /// The header and layer settings are validated, so corruption there
    /// must produce an error; corrupted payload words legitimately
    /// produce a different classification (real hardware cannot detect
    /// flipped weight bits either) but must not break the control flow.
    #[test]
    fn single_word_corruption_terminates(pos_seed in 0u64..10_000, flip in 1u64..u64::MAX) {
        let mut words = base_words();
        let pos = (pos_seed as usize) % words.len();
        words[pos] ^= flip;
        let cfg = HwConfig::paper_instance();
        if let Ok(run) = run_inference(&cfg, words) {
            prop_assert!(run.class < 16);
        } // a clean rejection is equally fine
    }

    /// Random garbage streams terminate cleanly.
    #[test]
    fn garbage_streams_terminate(seed in 0u64..10_000, len in 0usize..4_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let words: Vec<u64> = (0..len).map(|_| rng.gen()).collect();
        let cfg = HwConfig::paper_instance();
        let _ = run_inference(&cfg, words); // must return, any result
    }

    /// A valid prefix followed by truncation is always detected (the
    /// deadlock watchdog or a stream error, never a hang).
    #[test]
    fn truncation_always_detected(cut_seed in 0u64..10_000) {
        let words = base_words();
        let cut = 1 + (cut_seed as usize) % (words.len() - 1);
        let truncated = words[..cut].to_vec();
        let cfg = HwConfig::paper_instance();
        prop_assert!(run_inference(&cfg, truncated).is_err());
    }

    /// Corrupted `.npu` containers never produce a loadable silently.
    #[test]
    fn container_corruption_is_caught(byte_seed in 0u64..10_000, flip in 1u8..=255) {
        let model = ZooModel::TfcW1A1.build_untrained(2, BnMode::Folded).unwrap();
        let loadable = netpu_compiler::compile(&model, &vec![0u8; 784]).unwrap();
        let mut bytes = loadable.to_bytes().to_vec();
        let pos = (byte_seed as usize) % bytes.len();
        bytes[pos] ^= flip;
        // Either rejected, or (if the flip hit the stored-CRC field in a
        // way that still mismatches) never equal to the original.
        if let Ok(l) = netpu_compiler::Loadable::from_bytes(&bytes) {
            prop_assert_eq!(l, loadable, "corruption accepted silently");
        }
    }
}
