//! Differential suite for the translation validator (DESIGN.md §4.8).
//!
//! Two directions, both load-bearing:
//!
//! * **Soundness** — honest compilations of the whole model zoo and a
//!   sweep of random valid models must certify *equivalent* with zero
//!   false inequivalences, and their [`Certificate`]s must re-validate.
//! * **Completeness** — every seeded miscompile from the compiler's
//!   `inject` harness (structurally flawless streams computing the
//!   wrong function) must be flagged by the symbolic tier, while the
//!   structural/range tiers NPC001–NPC020 alone miss at least half of
//!   them. Where the validator produces a concrete distinguishing
//!   input, that counterexample must reproduce on the tick simulator.
//!
//! [`Certificate`]: netpu::check::Certificate

use netpu::check;
use netpu::compiler::inject::{self, Miscompile};
use netpu::compiler::{self, compile};
use netpu::core::netpu::run_inference;
use netpu::core::HwConfig;
use netpu::nn::export::BnMode;
use netpu::nn::qmodel::QuantMlp;
use netpu::nn::reference;
use netpu::nn::zoo::{random_model, ZooModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn pixels(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen()).collect()
}

/// Sweep every applicable (model, mutation) pair. Returns
/// `(total, caught_by_tier12)` and asserts the symbolic tier caught
/// each one.
fn sweep_miscompiles(model: &QuantMlp, cfg: &HwConfig) -> (usize, usize) {
    let px = pixels(model.input.len, 7);
    let mut total = 0;
    let mut caught_by_tier12 = 0;
    for m in Miscompile::ALL {
        let Some(compiled) = inject::compile_miscompiled(model, &px, m) else {
            continue; // no site for this mutation in this model
        };
        let loadable = compiled.expect("mutated models still compile");
        total += 1;

        // The structural + range tiers see an honestly-encoded valid
        // model; most miscompiles sail through them.
        if check::check_words(&loadable.words, cfg).has_errors() {
            caught_by_tier12 += 1;
        }

        // The symbolic tier must flag every one.
        let outcome = check::certify(model, &loadable.words, cfg);
        assert!(
            outcome.report.has_equiv_errors(),
            "{}: seeded miscompile '{}' not flagged by translation validation\n{}",
            model.name,
            m.describe(),
            outcome.report
        );
        assert!(
            outcome.certificate.is_none() || !outcome.is_equivalent(),
            "{}: '{}' got an equivalence certificate",
            model.name,
            m.describe()
        );

        // Any concrete distinguishing input must actually distinguish,
        // and the divergent behaviour must reproduce on the tick
        // simulator (which `tests/random_models.rs` pins bit-exactly to
        // the reference): the miscompiled stream, run in hardware on
        // the witness, agrees with the *mutated* reference — and that
        // differs from the claimed source.
        let mutated = inject::mutate(model, m).expect("site existed above");
        for w in &outcome.witnesses {
            let honest = reference::infer_traced(model, &w.pixels);
            let forged = reference::infer_traced(&mutated, &w.pixels);
            assert_ne!(
                honest.scores,
                forged.scores,
                "{}: '{}' witness does not distinguish the models",
                model.name,
                m.describe()
            );
            let bad = compile(&mutated, &w.pixels).expect("compiles");
            let run = run_inference(cfg, bad.words).expect("witness runs on the simulator");
            assert_eq!(run.class, forged.class);
            assert_eq!(run.score, forged.scores[forged.class]);
        }
    }
    (total, caught_by_tier12)
}

#[test]
fn seeded_miscompiles_are_caught_and_earlier_tiers_miss_most() {
    let cfg = HwConfig::paper_instance();
    // A folded-BN binary model (bias/threshold/weight sites) and a
    // hardware-BN model (BN drift sites) between them exercise all
    // eight mutations.
    let folded = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let hardware = ZooModel::LfcW1A2
        .build_untrained(2, BnMode::Hardware)
        .unwrap();

    let (t1, c1) = sweep_miscompiles(&folded, &cfg);
    let (t2, c2) = sweep_miscompiles(&hardware, &cfg);
    let (total, caught) = (t1 + t2, c1 + c2);
    assert!(
        total >= Miscompile::ALL.len(),
        "the two models must cover every mutation at least once, got {total}"
    );
    assert!(
        caught * 2 <= total,
        "NPC001–NPC020 caught {caught}/{total} seeded miscompiles; the \
         injection harness is supposed to slip past the earlier tiers"
    );
}

#[test]
fn every_mutation_has_a_site_somewhere() {
    let folded = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let hardware = ZooModel::LfcW1A2
        .build_untrained(2, BnMode::Hardware)
        .unwrap();
    for m in Miscompile::ALL {
        assert!(
            inject::mutate(&folded, m).is_some() || inject::mutate(&hardware, m).is_some(),
            "mutation '{}' has no site in either sweep model",
            m.describe()
        );
    }
}

#[test]
fn the_whole_zoo_certifies_equivalent() {
    let cfg = HwConfig::paper_instance();
    let zoo = [
        ZooModel::TfcW1A1,
        ZooModel::TfcW2A2,
        ZooModel::SfcW1A1,
        ZooModel::SfcW2A2,
        ZooModel::LfcW1A1,
        ZooModel::LfcW1A2,
    ];
    let mut certified = 0;
    for (i, variant) in zoo.into_iter().enumerate() {
        for mode in [BnMode::Folded, BnMode::Hardware] {
            let Ok(model) = variant.build_untrained(10 + i as u64, mode) else {
                continue;
            };
            let px = pixels(model.input.len, 99);
            let loadable = compile(&model, &px).unwrap();
            let outcome = check::certify(&model, &loadable.words, &cfg);
            assert!(
                outcome.is_equivalent(),
                "{} ({mode:?}): false inequivalence\n{}",
                model.name,
                outcome.report
            );
            let cert = outcome.certificate.expect("equivalent runs certify");
            assert!(cert.is_equivalent());
            assert!(
                cert.validate(&model, &loadable.words, &cfg),
                "{} ({mode:?}): certificate failed re-validation",
                model.name
            );
            certified += 1;
        }
    }
    assert!(
        certified >= 6,
        "zoo sweep degenerated to {certified} models"
    );
}

#[test]
fn random_models_certify_with_zero_false_inequivalences() {
    let cfg = HwConfig::paper_instance();
    for seed in 0..150u64 {
        let model = random_model(seed);
        assert!(model.validate().is_ok(), "seed {seed}: invalid model");
        let px = pixels(model.input.len, seed ^ 0xA5A5);
        let loadable = compiler::compile(&model, &px).unwrap();
        let outcome = check::certify(&model, &loadable.words, &cfg);
        assert!(
            outcome.is_equivalent(),
            "seed {seed} ({}): false inequivalence\n{}",
            model.name,
            outcome.report
        );
        let cert = outcome.certificate.expect("equivalent runs certify");
        assert!(cert.validate(&model, &loadable.words, &cfg));
    }
}
