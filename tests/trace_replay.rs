//! End-to-end trace/replay (DESIGN.md §4.7): a fault-injected serving
//! run recorded through the compact binary trace format must
//!
//! * round-trip **byte-identically** through [`TraceReader`] (the
//!   codec's decode∘encode identity, held on a real workload, not a
//!   synthetic record list),
//! * pass [`verify`]'s consistency replay — exactly-once lifecycle,
//!   crash resolved by requeue-or-reject, the DMA schedule re-derived
//!   bit-for-bit from the arbiter recurrence, and
//! * be **deterministic**: running the identical workload twice
//!   records the identical bytes, which is what makes a committed
//!   trace a replayable test case rather than a one-off log.
//!
//! Everything goes through the `netpu` umbrella crate, pinning the
//! `trace`/`serve` re-export surface.

use netpu::compiler::compile;
use netpu::nn::export::BnMode;
use netpu::nn::zoo::ZooModel;
use netpu::runtime::{Driver, InferRequest};
use netpu::serve::{FaultPlan, Server, ServerConfig, Submit};
use netpu::trace::{verify, MemorySink, TraceReader, TraceSink};
use std::sync::Arc;

/// One deterministic fault-injected serving run: a single board (so
/// the virtual-time schedule is total-ordered), sequential
/// submissions, a worker crash on the first delivery attempt, and one
/// structurally invalid stream denied at admission.
fn traced_run() -> Vec<u8> {
    let sink = Arc::new(MemorySink::new());
    let server = Server::start(
        Driver::builder().build(),
        ServerConfig {
            boards: 1,
            faults: FaultPlan::CrashFirstAttempts(1),
            trace: Some(Arc::clone(&sink) as Arc<dyn TraceSink>),
            ..ServerConfig::default()
        },
    );
    let model = ZooModel::TfcW1A1
        .build_untrained(1, BnMode::Folded)
        .unwrap();
    let loadable = compile(&model, &vec![7u8; 784]).unwrap();
    for _ in 0..3 {
        let ticket = server
            .submit(InferRequest::loadable(loadable.clone()))
            .expect_accepted();
        ticket.wait().expect("request served");
    }
    let mut garbage = loadable;
    garbage.words[0] = 0; // dead magic → NPC001 at admission
    match server.submit(InferRequest::loadable(garbage)) {
        Submit::Denied(reason) => assert_eq!(reason.code(), "INVALID_STREAM"),
        Submit::Accepted(_) => panic!("garbage stream was admitted"),
    }
    server.shutdown();
    sink.to_bytes()
}

#[test]
fn recorded_serving_trace_replays_byte_identically_and_verifies() {
    let bytes = traced_run();
    let reader = TraceReader::decode(&bytes).expect("recorded trace decodes");
    assert_eq!(reader.to_bytes(), bytes, "decode → re-encode diverged");

    let summary = verify(reader.records()).expect("recorded trace is consistent");
    assert_eq!(summary.requests, 4);
    assert_eq!(summary.completed, 3);
    assert_eq!(summary.rejected, 1);
    // The injected worker death resolved as exactly one requeue, and
    // only successful delivery attempts granted DMA windows.
    assert_eq!((summary.crashes, summary.requeues), (1, 1));
    assert_eq!(summary.grants, 3);
    assert!(summary.makespan_us > 0.0);
}

#[test]
fn identical_runs_record_identical_bytes() {
    assert_eq!(
        traced_run(),
        traced_run(),
        "the trace of a seeded single-board run must be deterministic"
    );
}

#[test]
fn tampered_bytes_do_not_verify_silently() {
    let bytes = traced_run();
    let mut truncated = bytes.clone();
    truncated.truncate(bytes.len() - 2);
    assert!(
        TraceReader::decode(&truncated).is_err(),
        "a cut-short trace must fail the decode, not replay partially"
    );
}
