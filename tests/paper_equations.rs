//! The paper's equations, verified as executable claims.
//!
//! * Eq. 1 — BatchNorm normalise + scale/shift.
//! * Eq. 2 — BN folding into weight and bias (Krishnamoorthi).
//! * Eq. 3 — BN folding into the Sign threshold (FINN).
//! * Eq. 4 — the piecewise-linear Sigmoid approximation (Amin et al.).
//! * Table I — XNOR as the binarized multiplier (also property-tested
//!   in `netpu-arith`).

use netpu::arith::activation::{sigmoid, SignActivation};
use netpu::arith::{binary, Fix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Eq. 1/2: `BN(Wx) = (γW/√(σ²+ε))·x + (β − γx̄/√(σ²+ε))` — folding BN
/// into scaled weights and a bias reproduces the unfolded computation.
#[test]
fn eq2_bn_folds_into_weight_and_bias() {
    let mut rng = StdRng::seed_from_u64(1);
    for _ in 0..200 {
        let w: Vec<f64> = (0..16).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let x: Vec<f64> = (0..16).map(|_| rng.gen_range(-3.0..3.0)).collect();
        let gamma: f64 = rng.gen_range(0.1..2.0);
        let beta: f64 = rng.gen_range(-1.0..1.0);
        let mean: f64 = rng.gen_range(-2.0..2.0);
        let var: f64 = rng.gen_range(0.01..4.0);
        let eps = 1e-5;

        let wx: f64 = w.iter().zip(&x).map(|(a, b)| a * b).sum();
        // Unfolded: BN applied to the pre-activation (Eq. 1).
        let unfolded = gamma * (wx - mean) / (var + eps).sqrt() + beta;
        // Folded (Eq. 2): scaled weights + new bias.
        let s = gamma / (var + eps).sqrt();
        let folded_wx: f64 = w.iter().zip(&x).map(|(a, b)| s * a * b).sum();
        let folded = folded_wx + (beta - gamma * mean / (var + eps).sqrt());
        assert!((unfolded - folded).abs() < 1e-9);
    }
}

/// Eq. 3: `Sign(BN(x)) = [x ≥ x̄ − β√(σ²+ε)/γ]` — the folded threshold
/// decides identically to sign-of-BN for positive γ.
#[test]
fn eq3_bn_folds_into_sign_threshold() {
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..500 {
        let gamma: f64 = rng.gen_range(0.05..3.0);
        let beta: f64 = rng.gen_range(-2.0..2.0);
        let mean: f64 = rng.gen_range(-5.0..5.0);
        let var: f64 = rng.gen_range(0.01..9.0);
        let eps = 1e-5;
        let threshold = mean - beta * (var + eps).sqrt() / gamma;
        let sign = SignActivation::new(Fix::from_f64(threshold));
        for _ in 0..20 {
            let x: f64 = rng.gen_range(-10.0..10.0);
            let bn = gamma * (x - mean) / (var + eps).sqrt() + beta;
            // Compare away from the threshold (the Fix grid rounds the
            // threshold to 1/32; exactly-at-boundary cases may differ).
            if (x - threshold).abs() < 0.1 {
                continue;
            }
            let expected = u8::from(bn >= 0.0);
            assert_eq!(
                sign.apply(Fix::from_f64(x)),
                expected,
                "x={x} thr={threshold} bn={bn}"
            );
        }
    }
}

/// Eq. 4: the PWL sigmoid's four segments evaluated at their defining
/// anchor points, in the exact fixed-point arithmetic (the constants
/// 0.84375, 0.625, 0.5 are exactly representable in Q32.5).
#[test]
fn eq4_pwl_segments_are_exact_in_fixed_point() {
    // Segment 4: |x| ≥ 5 → 1.
    assert_eq!(sigmoid(Fix::from_f64(5.0)), Fix::ONE);
    assert_eq!(sigmoid(Fix::from_f64(7.25)), Fix::ONE);
    // Segment 3: 2.375 ≤ |x| < 5 → x>>5 + 0.84375.
    let x = Fix::from_f64(3.0);
    assert_eq!(sigmoid(x), x.asr(5) + Fix::from_f64(0.84375));
    // Segment 2: 1 ≤ |x| < 2.375 → x>>3 + 0.625.
    let x = Fix::from_f64(2.0);
    assert_eq!(sigmoid(x), x.asr(3) + Fix::from_f64(0.625));
    // Segment 1: 0 ≤ |x| < 1 → x>>2 + 0.5.
    let x = Fix::from_f64(0.5);
    assert_eq!(sigmoid(x), x.asr(2) + Fix::from_f64(0.5));
    // Negative half: Sigmoid_L(x) = 1 − f(|x|).
    for v in [-0.5, -2.0, -3.0, -7.0] {
        let x = Fix::from_f64(v);
        assert_eq!(sigmoid(x), Fix::ONE - sigmoid(-x));
    }
}

/// Table I: one XNOR over packed lanes equals N bipolar multiplications,
/// and popcount recovers their sum — spot-checked here with the exact
/// scheme the paper describes (sum = #ones − #zeros).
#[test]
fn table1_xnor_popcount_scheme() {
    let a_bits = 0b1011_0010u8; // +1,-1,+1,+1,-1,-1,+1,-1 (LSB first)
    let w_bits = 0b1101_0110u8;
    let xnor = binary::xnor8(a_bits, w_bits);
    let ones = xnor.count_ones() as i32;
    let zeros = 8 - ones;
    let sum_via_popcount = ones - zeros;
    let sum_direct: i32 = (0..8)
        .map(|i| binary::decode_bipolar(a_bits >> i) * binary::decode_bipolar(w_bits >> i))
        .sum();
    assert_eq!(sum_via_popcount, sum_direct);
    assert_eq!(binary::binary_dot8(a_bits, w_bits, 8), sum_direct);
}

/// §II.C: the HWGQ/Multi-Threshold construction folds re-quantization
/// into the activation — counting `2^N − 1` thresholds yields exactly
/// the `round + clamp` quantizer output for monotone thresholds.
#[test]
fn multithreshold_equals_round_clamp_quantizer() {
    use netpu::arith::activation::MultiThreshold;
    use netpu::arith::Precision;
    let alpha = 2.0 / 3.0; // the 2-bit HWGQ step used by the trainer
    let thresholds: Vec<Fix> = (1..4)
        .map(|k| Fix::from_f64((k as f64 - 0.5) * alpha))
        .collect();
    let mt = MultiThreshold::new(thresholds.clone(), Precision::W2).unwrap();
    let mut x = -2.0;
    while x <= 4.0 {
        let fx = Fix::from_f64(x);
        let level = mt.apply(fx);
        // The equivalent round+clamp quantizer, with its level
        // boundaries on the same Q32.5 grid the hardware thresholds use.
        let expected = thresholds.iter().filter(|&&t| t <= fx).count() as i32;
        let ideal = (fx.to_f64() / alpha + 0.5).floor().clamp(0.0, 3.0) as i32;
        assert_eq!(level, expected, "x={x}");
        // And the grid rounding moves each boundary by at most one
        // epsilon, so the ideal quantizer agrees except within 1/32 of
        // a boundary.
        if thresholds
            .iter()
            .all(|t| (t.to_f64() - fx.to_f64()).abs() > 1.0 / 32.0)
        {
            assert_eq!(level, ideal, "x={x} (away from boundaries)");
        }
        x += 0.03125;
    }
}
