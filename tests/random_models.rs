//! Property-based whole-system test: arbitrary valid models and inputs
//! must produce identical results from the bit-exact software reference
//! and the cycle-level accelerator, via the wire format.

use netpu::arith::{Fix, Precision, QuantParams};
use netpu::compiler;
use netpu::compiler::PackingMode;
use netpu::core::{netpu::run_inference, HwConfig};
use netpu::nn::qmodel::{
    BnParams, HiddenLayer, InputLayer, LayerActivation, OutputLayer, QuantMlp,
};
use netpu::nn::reference;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministically builds a random-but-valid model from a seed and
/// coarse shape parameters.
fn build_model(
    seed: u64,
    input_len: usize,
    hidden_layers: usize,
    width: usize,
    classes: usize,
) -> QuantMlp {
    let mut rng = StdRng::seed_from_u64(seed);
    let act_bits: u8 = [1u8, 2, 2, 4][rng.gen_range(0..4usize)];
    let out_prec = Precision::new(act_bits).unwrap();

    let input_activation = if act_bits == 1 {
        LayerActivation::Sign {
            thresholds: (0..input_len)
                .map(|_| Fix::from_i32(rng.gen_range(0..255)))
                .collect(),
        }
    } else {
        LayerActivation::MultiThreshold {
            thresholds: (0..input_len)
                .map(|_| {
                    let mut t: Vec<i32> = (0..out_prec.multi_threshold_count())
                        .map(|_| rng.gen_range(0..255))
                        .collect();
                    t.sort_unstable();
                    t.into_iter().map(Fix::from_i32).collect()
                })
                .collect(),
        }
    };

    let mut hidden = Vec::new();
    let mut prev_width = input_len;
    let prev_prec = out_prec;
    for _ in 0..hidden_layers {
        // Weight precision: binary only when inputs are binary (the
        // XNOR pairing rule) or on the promoted integer path.
        let wp = if prev_prec.is_binary() {
            Precision::W1
        } else {
            Precision::new([1u8, 2, 4][rng.gen_range(0..3usize)]).unwrap()
        };
        let weights: Vec<i32> = (0..width * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect();
        let use_bn = rng.gen_bool(0.5);
        let out = prev_prec; // keep one precision through the stack
        let activation = if out.is_binary() {
            LayerActivation::Sign {
                thresholds: (0..width)
                    .map(|_| Fix::from_i32(rng.gen_range(-20..20)))
                    .collect(),
            }
        } else if rng.gen_bool(0.3) {
            // The full-precision ACTIV + QUAN path (ReLU/Sigmoid/Tanh);
            // these require hardware BN to keep the values in a sane
            // range, so force the BN branch below.
            let quant = QuantParams::from_f64(rng.gen_range(0.25..4.0), rng.gen_range(0.0..1.0));
            match rng.gen_range(0..3) {
                0 => LayerActivation::Relu { quant },
                1 => LayerActivation::Sigmoid { quant },
                _ => LayerActivation::Tanh { quant },
            }
        } else {
            LayerActivation::MultiThreshold {
                thresholds: (0..width)
                    .map(|_| {
                        let mut t: Vec<i32> = (0..out.multi_threshold_count())
                            .map(|_| rng.gen_range(-50..50))
                            .collect();
                        t.sort_unstable();
                        t.into_iter().map(Fix::from_i32).collect()
                    })
                    .collect(),
            }
        };
        let use_bn = use_bn
            || matches!(
                activation,
                LayerActivation::Relu { .. }
                    | LayerActivation::Sigmoid { .. }
                    | LayerActivation::Tanh { .. }
            );
        hidden.push(HiddenLayer {
            in_len: prev_width,
            neurons: width,
            weight_precision: wp,
            in_precision: prev_prec,
            out_precision: out,
            weights,
            bias: if use_bn {
                None
            } else {
                Some((0..width).map(|_| rng.gen_range(-10..10)).collect())
            },
            bn: if use_bn {
                Some(
                    (0..width)
                        .map(|_| BnParams {
                            scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.01..2.0)),
                            offset: Fix::from_f64(rng.gen_range(-4.0..4.0)),
                        })
                        .collect(),
                )
            } else {
                None
            },
            activation,
        });
        prev_width = width;
    }

    let wp = if prev_prec.is_binary() {
        Precision::W1
    } else {
        Precision::W2
    };
    let output = OutputLayer {
        in_len: prev_width,
        neurons: classes,
        weight_precision: wp,
        in_precision: prev_prec,
        weights: (0..classes * prev_width)
            .map(|_| {
                if wp.is_binary() {
                    if rng.gen() {
                        1
                    } else {
                        -1
                    }
                } else {
                    rng.gen_range(wp.signed_min()..=wp.signed_max())
                }
            })
            .collect(),
        bias: None,
        bn: Some(
            (0..classes)
                .map(|_| BnParams {
                    scale_q16: Fix::q16_scale_from_f64(rng.gen_range(0.1..2.0)),
                    offset: Fix::from_f64(rng.gen_range(-2.0..2.0)),
                })
                .collect(),
        ),
    };

    QuantMlp {
        name: format!("random-{seed}"),
        input: InputLayer {
            len: input_len,
            out_precision: out_prec,
            activation: input_activation,
        },
        hidden,
        output,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Accelerator ≡ reference for arbitrary valid models and inputs.
    #[test]
    fn accelerator_equals_reference_on_random_models(
        seed in 0u64..10_000,
        input_len in 4usize..40,
        hidden_layers in 1usize..4,
        width in 2usize..20,
        classes in 2usize..6,
        px_seed in 0u64..1_000,
    ) {
        let model = build_model(seed, input_len, hidden_layers, width, classes);
        prop_assert!(model.validate().is_ok(), "generated model invalid");
        let mut rng = StdRng::seed_from_u64(px_seed);
        let pixels: Vec<u8> = (0..input_len).map(|_| rng.gen()).collect();

        let trace = reference::infer_traced(&model, &pixels);
        // Alternate packing modes across cases; the result must not
        // depend on the wire format.
        let mode = if seed % 2 == 0 {
            PackingMode::Lanes8
        } else {
            PackingMode::Dense
        };
        let loadable = compiler::compile_packed(&model, &pixels, mode).unwrap();

        // The wire format preserves the model exactly.
        let decoded = compiler::decode(&loadable.words).unwrap();
        let mut anon = model.clone();
        anon.name = String::new();
        prop_assert_eq!(&decoded.model, &anon);

        // The cycle model agrees bit-exactly.
        let cfg = HwConfig {
            dense_weight_packing: true,
            ..HwConfig::paper_instance()
        };
        let run = run_inference(&cfg, loadable.words).unwrap();
        prop_assert_eq!(run.class, trace.class);
        prop_assert_eq!(run.score, trace.scores[trace.class]);
    }

    /// Latency is input-independent: same model, different pixels, same
    /// cycle count.
    #[test]
    fn latency_is_data_independent(seed in 0u64..1_000) {
        let model = build_model(seed, 16, 2, 8, 3);
        let cfg = HwConfig::paper_instance();
        let mut cycles = None;
        for px_seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(px_seed);
            let pixels: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            let words = compiler::compile(&model, &pixels).unwrap().words;
            let run = run_inference(&cfg, words).unwrap();
            match cycles {
                None => cycles = Some(run.cycles),
                Some(c) => prop_assert_eq!(c, run.cycles),
            }
        }
    }
}
