#![warn(missing_docs)]
//! NetPU-M: umbrella crate re-exporting the full reproduction stack.
//!
//! See the per-crate docs for details:
//! - [`arith`] — fixed-point / quantized / binarized arithmetic
//! - [`sim`] — cycle-level hardware simulation kernel
//! - [`nn`] — QAT MLP toolkit, datasets, model zoo
//! - [`compiler`] — model → NetPU-M data-stream loadable
//! - [`core`] — the NetPU/LPU/TNPU accelerator model + resource model
//! - [`finn`] — FINN-style HSD baseline
//! - [`runtime`] — DMA/driver/platform/power models
//! - [`serve`] — multi-board serving: bounded queue, shared-DMA
//!   arbitration, deadlines and retries
//! - [`fleet`] — sharded multi-tenant serving: compiled-model cache,
//!   swap-aware board scheduling, deterministic traffic replay

pub use netpu_arith as arith;
pub use netpu_compiler as compiler;
pub use netpu_core as core;
pub use netpu_finn as finn;
pub use netpu_fleet as fleet;
pub use netpu_nn as nn;
pub use netpu_runtime as runtime;
pub use netpu_serve as serve;
pub use netpu_sim as sim;
