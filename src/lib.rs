#![warn(missing_docs)]
//! NetPU-M: umbrella crate re-exporting the full reproduction stack.
//!
//! See the per-crate docs for details:
//! - [`arith`] — fixed-point / quantized / binarized arithmetic
//! - [`sim`] — cycle-level hardware simulation kernel
//! - [`nn`] — QAT MLP toolkit, datasets, model zoo
//! - [`compiler`] — model → NetPU-M data-stream loadable
//! - [`core`] — the NetPU/LPU/TNPU accelerator model + resource model
//! - [`finn`] — FINN-style HSD baseline
//! - [`runtime`] — DMA/driver/platform/power models
//! - [`serve`] — multi-board serving: bounded queue, shared-DMA
//!   arbitration, deadlines, retries, crash-only worker recovery
//! - [`fleet`] — sharded multi-tenant serving: compiled-model cache,
//!   swap-aware board scheduling, deterministic traffic replay
//! - [`check`] — stream verifier: NPC diagnostics, abstract-
//!   interpretation range analysis, the unified admission verdict
//! - [`trace`] — compact binary trace/replay format with
//!   byte-identical round trips and arbiter-schedule verification
//! - [`fuzz`] — coverage-guided structured fuzzer over loadable
//!   streams, with committed crasher regression fixtures

pub use netpu_arith as arith;
pub use netpu_check as check;
pub use netpu_compiler as compiler;
pub use netpu_core as core;
pub use netpu_finn as finn;
pub use netpu_fleet as fleet;
pub use netpu_fuzz as fuzz;
pub use netpu_nn as nn;
pub use netpu_runtime as runtime;
pub use netpu_serve as serve;
pub use netpu_sim as sim;
pub use netpu_trace as trace;
